"""Lowering MiniCC ASTs to the guarded straight-line partial-SSA IR.

Responsibilities (paper §3.1 / §4.1 preliminaries):

* split variables into top-level SSA variables ``V`` and address-taken
  objects ``O`` (anything whose address is taken, plus globals);
* flatten nested dereferences through auxiliary temporaries so each load
  and store is a single shared access;
* compute each instruction's *path condition* (``guard``) — branch
  conditions become SMT terms; conditions over the same ``extern``
  symbolic constant are correlated program-wide;
* merge SSA values at structured joins with guarded phis.

The output order linearizes the bounded control flow: instruction ℓ1 may
reach ℓ2 within a function only if ℓ1 precedes ℓ2 (guards rule out
cross-arm flows between exclusive branches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..frontend import ast_nodes as A
from ..frontend.fingerprint import ast_fingerprint, program_context_fingerprint
from ..frontend.source import Location
from ..ir.instructions import (
    AddrOfInst,
    AllocInst,
    BinOpInst,
    CallInst,
    CmpInst,
    CopyInst,
    ForkInst,
    FreeInst,
    Instruction,
    JoinInst,
    LoadInst,
    LockInst,
    PhiInst,
    ReturnInst,
    SignalInst,
    SinkInst,
    SourceInst,
    StoreInst,
    UnlockInst,
    WaitInst,
)
from ..ir.module import IRFunction, IRModule
from ..ir.values import (
    NULL,
    FunctionRef,
    IntConstant,
    MemObject,
    SymbolicConstant,
    Value,
    Variable,
    VariableNamer,
)
from ..smt.terms import (
    FALSE,
    TRUE,
    BoolTerm,
    IntTerm,
    and_,
    bool_var,
    eq,
    int_const,
    int_var,
    le,
    lt,
    ne,
    not_,
    or_,
)
from .unroll import DEFAULT_UNROLL_DEPTH, unroll_loops

__all__ = [
    "lower_program",
    "lower_program_incremental",
    "LoweringCache",
    "LoweringError",
]

#: Intrinsic function names recognized by the lowering.
INTRINSICS = frozenset(
    {
        "malloc",
        "free",
        "nondet",
        "print",
        "lock",
        "unlock",
        "taint_source",
        "taint_sink",
    }
)


class LoweringError(Exception):
    pass


@dataclass
class _CachedFunction:
    fingerprint: str
    block_index: int
    func: IRFunction


@dataclass
class LoweringCache:
    """Carry-over state for :func:`lower_program_incremental`.

    Holds the previous run's lowered :class:`IRFunction` objects plus the
    interned global cells.  Reusing the *objects* (not copies) is what
    keeps variable, instruction and guard identities stable across runs,
    which the downstream per-function artifact reuse depends on.
    """

    context_fp: str = ""
    functions: Dict[str, _CachedFunction] = field(default_factory=dict)
    globals: Dict[str, MemObject] = field(default_factory=dict)


def lower_program(
    program: A.Program,
    unroll_depth: int = DEFAULT_UNROLL_DEPTH,
) -> IRModule:
    """Lower a parsed MiniCC program to an :class:`IRModule`.

    Loops are unrolled to ``unroll_depth`` first (paper §6 unrolls twice).
    """
    module, _reused = lower_program_incremental(program, unroll_depth, None)
    return module


def lower_program_incremental(
    program: A.Program,
    unroll_depth: int = DEFAULT_UNROLL_DEPTH,
    cache: Optional[LoweringCache] = None,
) -> Tuple[IRModule, Tuple[str, ...]]:
    """Lower a program, reusing unchanged functions from ``cache``.

    Each function is lowered into its own label block (indexed by
    declaration order), so labels — and therefore bug keys — of one
    function never depend on the contents of another.  A function is
    reused when its unrolled-AST fingerprint, block position and the
    module context (function list, globals, externs, unroll depth) all
    match the cached run; reuse re-registers the *same* ``IRFunction``
    object.  Returns the module and the names of the reused functions.
    The cache, when given, is updated in place for the next run.
    """
    bounded = unroll_loops(program, unroll_depth)
    context_fp = program_context_fingerprint(bounded, unroll_depth)
    reuse_ok = cache is not None and cache.context_fp == context_fp

    module = IRModule()
    for ext in bounded.externs:
        module.externs[ext.name] = SymbolicConstant(ext.name)
    for glob in bounded.globals:
        obj = cache.globals.get(glob.name) if reuse_ok else None
        module.globals[glob.name] = obj if obj is not None else MemObject(
            glob.name, "global"
        )
    func_names = {f.name for f in bounded.functions}

    reused: List[str] = []
    new_entries: Dict[str, _CachedFunction] = {}
    for i, func in enumerate(bounded.functions):
        fp = ast_fingerprint(func)
        prev = cache.functions.get(func.name) if reuse_ok else None
        if prev is not None and prev.fingerprint == fp and prev.block_index == i:
            module.adopt_function(prev.func, i)
            reused.append(func.name)
            new_entries[func.name] = prev
        else:
            module.begin_label_block(i)
            lowered = _FunctionLowerer(module, func, func_names).lower()
            lowered.content_key = fp
            module.functions[func.name] = lowered
            new_entries[func.name] = _CachedFunction(fp, i, lowered)
    if cache is not None:
        cache.context_fp = context_fp
        cache.functions = new_entries
        cache.globals = dict(module.globals)
    return module, tuple(reused)


def _collect_addr_taken(block: A.BlockStmt, acc: Set[str]) -> None:
    """Names whose address is taken anywhere in the function body."""

    def walk_expr(e: A.Expr) -> None:
        if isinstance(e, A.AddrOfExpr):
            acc.add(e.name)
        elif isinstance(e, A.UnaryExpr):
            walk_expr(e.operand)
        elif isinstance(e, A.BinaryExpr):
            walk_expr(e.lhs)
            walk_expr(e.rhs)
        elif isinstance(e, A.CallExpr):
            for a in e.args:
                walk_expr(a)
        elif isinstance(e, A.DerefExpr):
            walk_expr(e.operand)
        elif isinstance(e, A.IndexExpr):
            walk_expr(e.base)
            walk_expr(e.index)

    def walk_stmt(s: A.Stmt) -> None:
        if isinstance(s, A.BlockStmt):
            for inner in s.body:
                walk_stmt(inner)
        elif isinstance(s, A.IfStmt):
            walk_expr(s.cond)
            walk_stmt(s.then_body)
            if s.else_body:
                walk_stmt(s.else_body)
        elif isinstance(s, A.WhileStmt):
            walk_expr(s.cond)
            walk_stmt(s.body)
        elif isinstance(s, A.VarDeclStmt) and s.init is not None:
            walk_expr(s.init)
        elif isinstance(s, A.AssignStmt):
            walk_expr(s.value)
        elif isinstance(s, A.StoreStmt):
            walk_expr(s.pointer)
            walk_expr(s.value)
        elif isinstance(s, A.IndexStoreStmt):
            walk_expr(s.base)
            walk_expr(s.index)
            walk_expr(s.value)
        elif isinstance(s, A.ReturnStmt) and s.value is not None:
            walk_expr(s.value)
        elif isinstance(s, A.ExprStmt):
            walk_expr(s.expr)
        elif isinstance(s, A.ForkStmt):
            for a in s.args:
                walk_expr(a)

    walk_stmt(block)


class _FunctionLowerer:
    def __init__(self, module: IRModule, func: A.FuncDef, func_names: Set[str]) -> None:
        self.module = module
        self.func_ast = func
        self.func_names = func_names
        # Content-derived SSA names scoped to this function: identical
        # source lowers to identical names in any process.
        self.namer = VariableNamer(func.name)
        self.out = IRFunction(name=func.name)
        self.guard: BoolTerm = TRUE
        # Source-level name -> current SSA value (top-level vars only).
        self.env: Dict[str, Value] = {}
        self.addr_taken: Set[str] = set()
        # Address-taken local name -> its stack object.
        self.stack_objs: Dict[str, MemObject] = {}
        # Cached pointer variable per address-taken local / global.
        self.slot_ptrs: Dict[str, Variable] = {}
        # Symbolic integer view of SSA variables, for branch conditions.
        self.symint: Dict[Variable, IntTerm] = {}
        # Boolean view of SSA variables (for vars holding comparison results).
        self.symbool: Dict[Variable, BoolTerm] = {}

    # ----- helpers --------------------------------------------------------

    def emit(self, cls, location: Location, **fields) -> Instruction:
        inst = cls(
            label=self.module.new_label(),
            guard=self.guard,
            location=location,
            **fields,
        )
        self.out.body.append(inst)
        self.module.register(inst, self.out.name)
        return inst

    def _symint_of(self, value: Value) -> Optional[IntTerm]:
        if isinstance(value, IntConstant):
            return int_const(value.value)
        if isinstance(value, SymbolicConstant):
            return int_var(value.name)
        if isinstance(value, Variable):
            return self.symint.get(value)
        return None

    def _cond_of_value(self, value: Value) -> BoolTerm:
        """The truth of ``value`` as an SMT term (``value != 0``)."""
        if isinstance(value, IntConstant):
            return TRUE if value.value != 0 else FALSE
        if value is NULL:
            return FALSE
        if isinstance(value, Variable):
            known = self.symbool.get(value)
            if known is not None:
                return known
        si = self._symint_of(value)
        if si is not None:
            return ne(si, 0)
        if isinstance(value, Variable):
            return bool_var(f"b!{value.name}")
        return bool_var(f"b!{value!r}")

    # ----- entry ------------------------------------------------------------

    def lower(self) -> IRFunction:
        _collect_addr_taken(self.func_ast.body, self.addr_taken)
        for param in self.func_ast.params:
            var = self.namer.fresh(param.name, source_name=param.name)
            self.out.params.append(var)
            if param.name in self.addr_taken:
                # Parameter whose address is taken: spill to a stack slot.
                obj = MemObject(f"{self.out.name}.{param.name}", "stack")
                self.stack_objs[param.name] = obj
                ptr = self._slot_pointer(param.name, self.func_ast.location)
                self.emit(StoreInst, self.func_ast.location, pointer=ptr, value=var)
            else:
                self.env[param.name] = var
        self._lower_block(self.func_ast.body)
        return self.out

    def _slot_pointer(self, name: str, location: Location) -> Variable:
        """The pointer to an address-taken local's or global's memory slot."""
        cached = self.slot_ptrs.get(name)
        if cached is not None:
            return cached
        if name in self.module.globals:
            obj = self.module.globals[name]
        else:
            obj = self.stack_objs.get(name)
            if obj is None:
                obj = MemObject(f"{self.out.name}.{name}", "stack")
                self.stack_objs[name] = obj
        ptr = self.namer.fresh(f"addr.{name}")
        saved_guard, self.guard = self.guard, TRUE  # address is unconditional
        self.emit(AddrOfInst, location, dst=ptr, obj=obj)
        self.guard = saved_guard
        self.slot_ptrs[name] = ptr
        return ptr

    # ----- statements ---------------------------------------------------

    def _lower_block(self, block: A.BlockStmt) -> None:
        for stmt in block.body:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.BlockStmt):
            self._lower_block(stmt)
        elif isinstance(stmt, A.VarDeclStmt):
            self._lower_vardecl(stmt)
        elif isinstance(stmt, A.AssignStmt):
            self._lower_assign(stmt.name, stmt.value, stmt.location)
        elif isinstance(stmt, A.StoreStmt):
            ptr = self._lower_expr(stmt.pointer)
            value = self._lower_expr(stmt.value)
            self.emit(StoreInst, stmt.location, pointer=ptr, value=value)
        elif isinstance(stmt, A.IndexStoreStmt):
            # Arrays are monolithic (paper §6): the index is evaluated for
            # its side effects only; the store hits the whole object.
            base = self._lower_expr(stmt.base)
            self._lower_expr(stmt.index)
            value = self._lower_expr(stmt.value)
            self.emit(StoreInst, stmt.location, pointer=base, value=value)
        elif isinstance(stmt, A.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, A.WhileStmt):
            raise LoweringError(
                f"{stmt.location}: while-loop survived unrolling (internal error)"
            )
        elif isinstance(stmt, A.ReturnStmt):
            value = self._lower_expr(stmt.value) if stmt.value is not None else None
            self.emit(ReturnInst, stmt.location, value=value)
            if value is not None:
                self.out.returns.append((value, self.guard))
        elif isinstance(stmt, A.ExprStmt):
            self._lower_expr(stmt.expr, effect_only=True)
        elif isinstance(stmt, A.ForkStmt):
            callee = self._callee_value(stmt.callee, stmt.location)
            args = [self._lower_expr(a) for a in stmt.args]
            self.emit(ForkInst, stmt.location, thread=stmt.thread, callee=callee, args=args)
        elif isinstance(stmt, A.JoinStmt):
            self.emit(JoinInst, stmt.location, thread=stmt.thread)
        else:  # pragma: no cover - defensive
            raise LoweringError(f"unhandled statement {type(stmt).__name__}")

    def _lower_vardecl(self, stmt: A.VarDeclStmt) -> None:
        if stmt.name in self.addr_taken:
            obj = MemObject(f"{self.out.name}.{stmt.name}", "stack")
            self.stack_objs.setdefault(stmt.name, obj)
            if stmt.init is not None:
                value = self._lower_expr(stmt.init)
                ptr = self._slot_pointer(stmt.name, stmt.location)
                self.emit(StoreInst, stmt.location, pointer=ptr, value=value)
            return
        if stmt.init is not None:
            self._lower_assign(stmt.name, stmt.init, stmt.location)
        else:
            # Uninitialized: an opaque value (no defining flow).
            var = self.namer.fresh(stmt.name, source_name=stmt.name)
            self.env[stmt.name] = var

    def _lower_assign(self, name: str, value_expr: A.Expr, location: Location) -> None:
        value = self._lower_expr(value_expr)
        if name in self.addr_taken or name in self.module.globals:
            ptr = self._slot_pointer(name, location)
            self.emit(StoreInst, location, pointer=ptr, value=value)
            return
        dst = self.namer.fresh(name, source_name=name)
        inst = self.emit(CopyInst, location, dst=dst, src=value)
        si = self._symint_of(value)
        if si is not None:
            self.symint[dst] = si
        sb = self.symbool.get(value) if isinstance(value, Variable) else None
        if sb is not None:
            self.symbool[dst] = sb
        self.env[name] = dst

    def _lower_if(self, stmt: A.IfStmt) -> None:
        cond = self._lower_condition(stmt.cond)
        outer_guard = self.guard
        before_env = dict(self.env)

        self.guard = and_(outer_guard, cond)
        self._lower_block(stmt.then_body)
        then_env = self.env

        self.env = dict(before_env)
        self.guard = and_(outer_guard, not_(cond))
        if stmt.else_body is not None:
            self._lower_block(stmt.else_body)
        else_env = self.env

        self.guard = outer_guard
        merged: Dict[str, Value] = {}
        for name in before_env:
            tv = then_env.get(name, before_env[name])
            ev = else_env.get(name, before_env[name])
            if tv is ev:
                merged[name] = tv
                continue
            dst = self.namer.fresh(name, source_name=name)
            self.emit(
                PhiInst,
                stmt.location,
                dst=dst,
                incomings=[(tv, cond), (ev, not_(cond))],
            )
            merged[name] = dst
        self.env = merged

    # ----- conditions -----------------------------------------------------

    _CMP_BUILDERS = {
        "<": lambda a, b: lt(a, b),
        "<=": lambda a, b: le(a, b),
        ">": lambda a, b: lt(b, a),
        ">=": lambda a, b: le(b, a),
        "==": lambda a, b: eq(a, b),
        "!=": lambda a, b: ne(a, b),
    }

    def _lower_condition(self, expr: A.Expr) -> BoolTerm:
        """Lower a branch condition to an SMT term, preserving correlation:
        conditions over the same externs/values yield identical atoms."""
        if isinstance(expr, A.UnaryExpr) and expr.op == "!":
            return not_(self._lower_condition(expr.operand))
        if isinstance(expr, A.BinaryExpr):
            if expr.op == "&&":
                return and_(self._lower_condition(expr.lhs), self._lower_condition(expr.rhs))
            if expr.op == "||":
                return or_(self._lower_condition(expr.lhs), self._lower_condition(expr.rhs))
            if expr.op in self._CMP_BUILDERS:
                lhs = self._lower_expr(expr.lhs)
                rhs = self._lower_expr(expr.rhs)
                li, ri = self._symint_of(lhs), self._symint_of(rhs)
                if li is not None and ri is not None:
                    return self._CMP_BUILDERS[expr.op](li, ri)
                # Opaque comparison: a fresh-but-deterministic atom keyed by
                # the compared SSA values, so repeated tests correlate.
                return bool_var(f"cmp!{expr.op}!{lhs!r}!{rhs!r}")
        value = self._lower_expr(expr)
        return self._cond_of_value(value)

    # ----- expressions -----------------------------------------------------

    def _callee_value(self, name: str, location: Location) -> Value:
        if name in self.func_names:
            return FunctionRef(name)
        return self._read_var(name, location)

    def _read_var(self, name: str, location: Location) -> Value:
        if name in self.module.externs:
            return self.module.externs[name]
        if name in self.func_names:
            return FunctionRef(name)
        if name in self.addr_taken or name in self.module.globals:
            ptr = self._slot_pointer(name, location)
            dst = self.namer.fresh(f"ld.{name}")
            self.emit(LoadInst, location, dst=dst, pointer=ptr)
            return dst
        value = self.env.get(name)
        if value is None:
            # Read of a never-written variable: opaque value.
            value = self.namer.fresh(name, source_name=name)
            self.env[name] = value
        return value

    def _lower_expr(self, expr: A.Expr, effect_only: bool = False) -> Value:
        if isinstance(expr, A.NumberExpr):
            return IntConstant(expr.value)
        if isinstance(expr, A.NullExpr):
            return NULL
        if isinstance(expr, A.VarExpr):
            return self._read_var(expr.name, expr.location)
        if isinstance(expr, A.AddrOfExpr):
            return self._slot_pointer(expr.name, expr.location)
        if isinstance(expr, A.DerefExpr):
            ptr = self._lower_expr(expr.operand)
            dst = self.namer.fresh("ld")
            self.emit(LoadInst, expr.location, dst=dst, pointer=ptr)
            return dst
        if isinstance(expr, A.IndexExpr):
            # Monolithic arrays: p[i] loads the whole object behind p.
            base = self._lower_expr(expr.base)
            self._lower_expr(expr.index)
            dst = self.namer.fresh("ld")
            self.emit(LoadInst, expr.location, dst=dst, pointer=base)
            return dst
        if isinstance(expr, A.UnaryExpr):
            operand = self._lower_expr(expr.operand)
            dst = self.namer.fresh("t")
            if expr.op == "-":
                self.emit(
                    BinOpInst, expr.location, dst=dst, op="-", lhs=IntConstant(0), rhs=operand
                )
                si = self._symint_of(operand)
                if si is not None:
                    self.symint[dst] = int_const(0) - si
            else:  # '!'
                self.emit(
                    CmpInst, expr.location, dst=dst, op="==", lhs=operand, rhs=IntConstant(0)
                )
                self.symbool[dst] = not_(self._cond_of_value(operand))
            return dst
        if isinstance(expr, A.BinaryExpr):
            return self._lower_binary(expr)
        if isinstance(expr, A.CallExpr):
            return self._lower_call(expr, effect_only)
        raise LoweringError(f"unhandled expression {type(expr).__name__}")

    def _lower_binary(self, expr: A.BinaryExpr) -> Value:
        if expr.op in ("&&", "||"):
            cond = self._lower_condition(expr)
            dst = self.namer.fresh("t")
            self.emit(
                CmpInst, expr.location, dst=dst, op="!=", lhs=IntConstant(0), rhs=IntConstant(0)
            )
            self.symbool[dst] = cond
            return dst
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        dst = self.namer.fresh("t")
        if expr.op in self._CMP_BUILDERS:
            self.emit(CmpInst, expr.location, dst=dst, op=expr.op, lhs=lhs, rhs=rhs)
            li, ri = self._symint_of(lhs), self._symint_of(rhs)
            if li is not None and ri is not None:
                self.symbool[dst] = self._CMP_BUILDERS[expr.op](li, ri)
            else:
                self.symbool[dst] = bool_var(f"cmp!{expr.op}!{lhs!r}!{rhs!r}")
            return dst
        self.emit(BinOpInst, expr.location, dst=dst, op=expr.op, lhs=lhs, rhs=rhs)
        li, ri = self._symint_of(lhs), self._symint_of(rhs)
        if li is not None and ri is not None:
            if expr.op == "+":
                self.symint[dst] = li + ri
            elif expr.op == "-":
                self.symint[dst] = li - ri
        return dst

    def _lower_call(self, expr: A.CallExpr, effect_only: bool) -> Value:
        name = expr.callee
        loc = expr.location
        if name == "malloc":
            dst = self.namer.fresh("p")
            inst = self.emit(AllocInst, loc, dst=dst, obj=None)
            inst.obj = MemObject(f"o{inst.label}", "heap")  # named by alloc site
            return dst
        if name == "free":
            ptr = self._lower_expr(expr.args[0])
            self.emit(FreeInst, loc, pointer=ptr)
            return IntConstant(0)
        if name == "nondet":
            dst = self.namer.fresh("nd")
            self.emit(SourceInst, loc, dst=dst, kind="nondet")
            return dst
        if name == "taint_source":
            dst = self.namer.fresh("taint")
            self.emit(SourceInst, loc, dst=dst, kind="taint")
            return dst
        if name == "print":
            args = [self._lower_expr(a) for a in expr.args]
            self.emit(SinkInst, loc, kind="print", args=args)
            return IntConstant(0)
        if name == "taint_sink":
            args = [self._lower_expr(a) for a in expr.args]
            self.emit(SinkInst, loc, kind="taint_sink", args=args)
            return IntConstant(0)
        if name == "lock":
            self.emit(LockInst, loc, mutex=_mutex_name(expr))
            return IntConstant(0)
        if name == "unlock":
            self.emit(UnlockInst, loc, mutex=_mutex_name(expr))
            return IntConstant(0)
        if name == "signal":
            self.emit(SignalInst, loc, cond=_mutex_name(expr))
            return IntConstant(0)
        if name == "wait":
            self.emit(WaitInst, loc, cond=_mutex_name(expr))
            return IntConstant(0)
        callee = self._callee_value(name, loc)
        args = [self._lower_expr(a) for a in expr.args]
        dst = None if effect_only else self.namer.fresh("ret")
        self.emit(CallInst, loc, dst=dst, callee=callee, args=args)
        return dst if dst is not None else IntConstant(0)


def _mutex_name(expr: A.CallExpr) -> str:
    if expr.args and isinstance(expr.args[0], A.VarExpr):
        return expr.args[0].name
    return f"mutex@{expr.location.line}"
