"""Reproduction of *Canary: Practical Static Detection of Inter-thread
Value-Flow Bugs* (Cai, Yao, Zhang — PLDI 2021).

Quickstart::

    from repro import Canary

    report = Canary().analyze_source('''
        void main() { ... }
    ''')
    for bug in report.bugs:
        print(bug.describe())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured evaluation record.
"""

__version__ = "1.0.0"

from .analysis import AnalysisConfig, AnalysisReport, Canary

__all__ = ["Canary", "AnalysisConfig", "AnalysisReport", "__version__"]
