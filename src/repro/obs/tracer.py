"""Hierarchical trace spans for the analysis pipeline.

A :class:`Tracer` produces nested :class:`Span`\\ s — ``analyze`` →
``pass:<name>`` → ``dataflow:<fn>`` / ``enumerate`` → ``solver.query`` →
``solver.solve`` — with parentage tracked per thread.  The design goals,
in order:

1. **zero overhead when off** — the default tracer is disabled; its
   ``span()`` returns a shared no-op singleton (no allocation, no lock),
   so instrumented code pays one attribute check per site;
2. **cross-process spans** — a :class:`SpanContext` (trace id + span id)
   is picklable and rides along with solver-pool payloads; the worker
   records spans into a :class:`SpanRecorder` (plain dicts, picklable)
   and the parent :meth:`Tracer.ingest`\\ s them under the submitting
   span, so a query solved three processes away still nests correctly;
3. **exporter-agnostic** — finished spans are plain data; the exporters
   in :mod:`repro.obs.export` turn them into newline-delimited JSON or
   Chrome trace events.

Timestamps are ``time.time()`` (epoch seconds): unlike ``perf_counter``
they are comparable across processes on one machine, which is what the
Chrome-trace timeline needs.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, List, NamedTuple, Optional

__all__ = ["NULL_TRACER", "Span", "SpanContext", "SpanRecorder", "Tracer"]


class SpanContext(NamedTuple):
    """The picklable coordinates of a live span — everything a worker
    process needs to parent its own spans under it."""

    trace_id: str
    span_id: str


class Span:
    """One finished (or in-flight) operation on the timeline."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
        "pid",
        "tid",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.time()
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self._tracer = tracer

    # recorded attributes must stay JSON-safe; coerce anything exotic
    def set(self, key: str, value: Any) -> "Span":
        if not isinstance(value, (str, int, float, bool, type(None))):
            value = repr(value)
        self.attrs[key] = value
        return self

    @property
    def seconds(self) -> float:
        return (self.end if self.end is not None else time.time()) - self.start

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "tid": self.tid,
        }

    # ----- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc_type is not None:
            self.set("error", f"{exc_type.__name__}: {exc}")
        if self._tracer is not None:
            self._tracer._finish(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _NullSpan:
    """The disabled-tracing fast path: one shared, stateless no-op."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def context(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans; thread-aware; cheap to consult when disabled.

    One tracer outlives many analysis runs (the CLI shares one across
    all input files); each root ``analyze`` span starts a fresh stack on
    its thread.  ``finished`` accumulates completed spans in end order —
    exporters sort as needed.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.trace_id = os.urandom(8).hex()
        self.finished: List[Span] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ----- span lifecycle ----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> str:
        with self._lock:
            return f"s{next(self._ids)}"

    def span(self, name: str, parent: Optional[SpanContext] = None, **attrs):
        """Open a span as a context manager.

        Parentage defaults to the innermost open span *of this thread*;
        pass ``parent`` explicitly to attach work running on a helper
        thread (e.g. enumeration producers) under its logical parent.
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        if parent is not None:
            parent_id: Optional[str] = parent.span_id
        else:
            parent_id = stack[-1].span_id if stack else None
        span = Span(name, self.trace_id, self._next_id(), parent_id, tracer=self)
        for key, value in attrs.items():
            span.set(key, value)
        # Only thread-default-parented spans join the ambient stack: a
        # span explicitly parented elsewhere is not "current" here.
        if parent is None:
            stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = time.time()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self.finished.append(span)

    def current_context(self) -> Optional[SpanContext]:
        """The innermost open span of the calling thread (for injection
        into worker payloads); ``None`` when disabled or at top level."""
        if not self.enabled:
            return None
        stack = self._stack()
        return stack[-1].context() if stack else None

    # ----- cross-process ingestion -------------------------------------------

    def recorder(self, parent: Optional[SpanContext] = None) -> Optional["SpanRecorder"]:
        """A picklable recorder parented under the current span (or the
        given context); ``None`` when tracing is off."""
        if not self.enabled:
            return None
        return SpanRecorder(parent if parent is not None else self.current_context())

    def ingest(self, records: List[Dict[str, Any]]) -> int:
        """Adopt spans recorded elsewhere (worker process or recorder).

        Each record is re-identified with this tracer's ids; records keep
        their own parent linkage (``parent`` indices into the batch) and
        fall back to the record's ``parent_ctx`` span id, so a worker's
        nested spans arrive as a correctly shaped subtree."""
        if not self.enabled or not records:
            return 0
        assigned: Dict[int, str] = {}
        adopted: List[Span] = []
        for i, rec in enumerate(records):
            span = Span.__new__(Span)
            span.name = rec["name"]
            span.trace_id = self.trace_id
            span.span_id = self._next_id()
            parent_idx = rec.get("parent_index")
            if parent_idx is not None and parent_idx in assigned:
                span.parent_id = assigned[parent_idx]
            else:
                ctx = rec.get("parent_ctx")
                span.parent_id = ctx[1] if ctx else None
            span.start = rec["start"]
            span.end = rec["end"]
            span.attrs = dict(rec.get("attrs", {}))
            span.pid = rec.get("pid", os.getpid())
            span.tid = rec.get("tid", 0)
            span._tracer = None
            assigned[i] = span.span_id
            adopted.append(span)
        with self._lock:
            self.finished.extend(adopted)
        return len(adopted)

    # ----- convenience -------------------------------------------------------

    def spans_named(self, name: str) -> List[Span]:
        with self._lock:
            return [s for s in self.finished if s.name == name]

    def clear(self) -> None:
        with self._lock:
            self.finished.clear()


#: the module-wide disabled tracer every instrumented component defaults
#: to — sharing one instance keeps the off-path allocation-free.
NULL_TRACER = Tracer(enabled=False)


class _RecorderSpan:
    """One in-flight recorder span (worker-side)."""

    __slots__ = ("recorder", "index")

    def __init__(self, recorder: "SpanRecorder", index: int) -> None:
        self.recorder = recorder
        self.index = index

    def set(self, key: str, value: Any) -> "_RecorderSpan":
        if not isinstance(value, (str, int, float, bool, type(None))):
            value = repr(value)
        self.recorder.records[self.index]["attrs"][key] = value
        return self

    def __enter__(self) -> "_RecorderSpan":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        rec = self.recorder.records[self.index]
        if exc_type is not None:
            rec["attrs"]["error"] = f"{exc_type.__name__}: {exc}"
        rec["end"] = time.time()
        stack = self.recorder._stack
        if stack and stack[-1] == self.index:
            stack.pop()


class SpanRecorder:
    """Worker-side span collection: plain dicts, picklable both ways.

    Constructed in the parent from a :class:`SpanContext`, shipped with
    the payload, used in the worker, and the resulting ``records`` ride
    back with the result for :meth:`Tracer.ingest`.  Single-threaded by
    design (one recorder per payload)."""

    def __init__(self, parent_ctx: Optional[SpanContext]) -> None:
        self.parent_ctx = tuple(parent_ctx) if parent_ctx is not None else None
        self.records: List[Dict[str, Any]] = []
        self._stack: List[int] = []

    def span(self, name: str, **attrs) -> _RecorderSpan:
        record = {
            "name": name,
            "parent_index": self._stack[-1] if self._stack else None,
            "parent_ctx": self.parent_ctx,
            "start": time.time(),
            "end": None,
            "attrs": {},
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        self.records.append(record)
        index = len(self.records) - 1
        self._stack.append(index)
        span = _RecorderSpan(self, index)
        for key, value in attrs.items():
            span.set(key, value)
        return span

    def record_span(self, name: str, start: float, end: float, **attrs) -> None:
        """Append an already-timed span without touching the stack.

        For work measured on helper threads (e.g. portfolio cubes) and
        reported back to the recorder's owning thread: the span parents
        under the owning thread's current span, but its timing is the
        helper's."""
        span_attrs: Dict[str, Any] = {}
        for key, value in attrs.items():
            if not isinstance(value, (str, int, float, bool, type(None))):
                value = repr(value)
            span_attrs[key] = value
        self.records.append(
            {
                "name": name,
                "parent_index": self._stack[-1] if self._stack else None,
                "parent_ctx": self.parent_ctx,
                "start": start,
                "end": end,
                "attrs": span_attrs,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            }
        )
