"""``repro.obs`` — the unified observability layer.

One tracer (:mod:`repro.obs.tracer`), one metrics registry
(:mod:`repro.obs.metrics`), three exporters (:mod:`repro.obs.export`)
and their schema validators (:mod:`repro.obs.schema`).  See
``docs/architecture.md`` §12 for the span taxonomy and metric naming
convention, and ``python -m repro.obs validate --help`` for the CI
schema gate.
"""

from .export import (
    read_trace_ndjson,
    run_meta,
    write_chrome_trace,
    write_metrics_json,
    write_trace_ndjson,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .schema import (
    SchemaError,
    validate_chrome_trace_file,
    validate_metrics_file,
    validate_trace_file,
)
from .tracer import NULL_TRACER, Span, SpanContext, SpanRecorder, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "SchemaError",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "Tracer",
    "read_trace_ndjson",
    "run_meta",
    "validate_chrome_trace_file",
    "validate_metrics_file",
    "validate_trace_file",
    "write_chrome_trace",
    "write_metrics_json",
    "write_trace_ndjson",
]
