"""``python -m repro.obs validate`` — the CI trace-schema gate.

Validates exported observability artifacts against the documented
schemas and exits non-zero (with the offending file and reason) on the
first mismatch::

    python -m repro.obs validate --trace out.ndjson \\
        --chrome out.chrome.json --metrics metrics.json
"""

from __future__ import annotations

import argparse
import sys

from .schema import (
    SchemaError,
    validate_chrome_trace_file,
    validate_metrics_file,
    validate_trace_file,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.obs")
    sub = parser.add_subparsers(dest="command", required=True)
    val = sub.add_parser("validate", help="validate exported artifacts")
    val.add_argument("--trace", action="append", default=[], metavar="FILE")
    val.add_argument("--chrome", action="append", default=[], metavar="FILE")
    val.add_argument("--metrics", action="append", default=[], metavar="FILE")
    args = parser.parse_args(argv)

    targets = (
        [("trace", p, validate_trace_file) for p in args.trace]
        + [("chrome", p, validate_chrome_trace_file) for p in args.chrome]
        + [("metrics", p, validate_metrics_file) for p in args.metrics]
    )
    if not targets:
        parser.error("nothing to validate (pass --trace/--chrome/--metrics)")
    for kind, path, validate in targets:
        try:
            count = validate(path)
        except FileNotFoundError:
            print(f"FAIL {kind} {path}: file not found", file=sys.stderr)
            return 2
        except SchemaError as exc:
            print(f"FAIL {kind} {path}: {exc}", file=sys.stderr)
            return 1
        print(f"ok {kind} {path}: {count} record(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
