"""The metrics registry: the single home for analysis statistics.

Naming convention (documented in ``docs/architecture.md`` §12): dotted
lowercase ``<component>.<metric>`` — ``solver.queries``,
``passes.run``, ``cache.hits`` — with optional labels for per-checker
or per-phase breakdowns (``search.visits{checker=use-after-free}``).

Four instrument kinds:

* :class:`Counter` — monotonically accumulating int/float (``add``);
* :class:`Gauge` — last-write-wins value (``set``);
* :class:`Histogram` — running count/sum/min/max of observations;
* *series* — an ordered list of structured rows (the pass table), for
  data that is tabular rather than scalar.

Everything is thread-safe (one registry lock; instruments are touched
under it), and :meth:`MetricsRegistry.snapshot` flattens the whole
registry into the JSON schema the exporters and the bench runner share.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: label set rendered into a stable instrument key
_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically accumulating value (int stays int; adding a float
    promotes, so ``solver.solve_seconds`` naturally reads as a float)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey, initial=0) -> None:
        self.name = name
        self.labels = labels
        self.value = initial

    def add(self, delta=1) -> None:
        self.value += delta


class Gauge:
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey, initial=0) -> None:
        self.name = name
        self.labels = labels
        self.value = initial

    def set(self, value) -> None:
        self.value = value


class Histogram:
    __slots__ = ("name", "labels", "count", "total", "min", "max")

    def __init__(self, name: str, labels: _LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }


class MetricsRegistry:
    """Counters, gauges, histograms and row-series under one namespace.

    Instruments are created on first touch and keep insertion order, so
    views that rebuild legacy dicts reproduce their historical key
    order.  One registry spans one analysis run (the pipeline creates
    it, the :class:`~repro.analysis.driver.AnalysisReport` exposes it as
    ``report.metrics``, and the legacy ``*_statistics`` accessors are
    views over it).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}
        self._series: Dict[str, List[Dict[str, Any]]] = {}

    # ----- instrument access -------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter(name, key[1])
            return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge(name, key[1])
            return inst

    def histogram(self, name: str, **labels) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(name, key[1])
            return inst

    # ----- convenience -------------------------------------------------------

    def inc(self, name: str, delta=1, **labels) -> None:
        counter = self.counter(name, **labels)
        with self._lock:
            counter.add(delta)

    def set(self, name: str, value, **labels) -> None:
        gauge = self.gauge(name, **labels)
        with self._lock:
            gauge.set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        hist = self.histogram(name, **labels)
        with self._lock:
            hist.observe(value)

    def value(self, name: str, default=None, **labels):
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._counters.get(key) or self._gauges.get(key)
            return inst.value if inst is not None else default

    # ----- series (structured rows, e.g. the pass table) --------------------

    def series(self, name: str) -> List[Dict[str, Any]]:
        """The live row list for ``name`` (created empty on first use)."""
        with self._lock:
            rows = self._series.get(name)
            if rows is None:
                rows = self._series[name] = []
            return rows

    def replace_series(self, name: str, rows: Iterable[Dict[str, Any]]) -> None:
        with self._lock:
            self._series[name] = [dict(r) for r in rows]

    def append(self, series_name: str, **row) -> None:
        # first parameter deliberately not called ``name``: rows of the
        # pass table carry a ``name`` column of their own
        with self._lock:
            self._series.setdefault(series_name, []).append(row)

    # ----- views -------------------------------------------------------------

    def namespace(self, prefix: str, label: Optional[Tuple[str, str]] = None) -> Dict[str, Any]:
        """Plain ``{suffix: value}`` dict of every counter/gauge under
        ``prefix.``, optionally filtered to one ``(label, value)`` pair.
        Insertion order is preserved — views rebuilt from a seeded
        registry keep the seeding dict's key order."""
        dot = prefix + "."
        want = (label[0], str(label[1])) if label is not None else None
        out: Dict[str, Any] = {}
        with self._lock:
            for inst in list(self._counters.values()) + list(self._gauges.values()):
                if not inst.name.startswith(dot):
                    continue
                if want is not None and want not in inst.labels:
                    continue
                if want is None and inst.labels:
                    continue
                out[inst.name[len(dot):]] = inst.value
        return out

    def label_values(self, prefix: str, label: str) -> List[str]:
        """Distinct values of ``label`` among instruments under
        ``prefix.`` in first-seen order (e.g. the checkers that reported
        ``search.*`` counters)."""
        dot = prefix + "."
        seen: Dict[str, None] = {}
        with self._lock:
            for inst in list(self._counters.values()) + list(self._gauges.values()):
                if inst.name.startswith(dot):
                    for k, v in inst.labels:
                        if k == label and v not in seen:
                            seen[v] = None
        return list(seen)

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold another registry into this one (per-request scoping).

        Each analysis run owns a private registry; a long-lived server
        folds every finished run into its aggregate so ``/metrics``
        reflects cumulative traffic while per-report registries stay
        isolated.  Counters accumulate, gauges take the newer value,
        histograms merge their summaries; series (the pass table) are
        per-run by nature and deliberately not merged.  ``prefix`` (e.g.
        ``"runs."``) namespaces the folded instruments.
        """
        with other._lock:
            counters = [(c.name, c.labels, c.value) for c in other._counters.values()]
            gauges = [(g.name, g.labels, g.value) for g in other._gauges.values()]
            hists = [
                (h.name, h.labels, h.count, h.total, h.min, h.max)
                for h in other._histograms.values()
            ]
        with self._lock:
            for name, labels, value in counters:
                key = (prefix + name, labels)
                inst = self._counters.get(key)
                if inst is None:
                    inst = self._counters[key] = Counter(key[0], labels)
                inst.add(value)
            for name, labels, value in gauges:
                key = (prefix + name, labels)
                inst = self._gauges.get(key)
                if inst is None:
                    inst = self._gauges[key] = Gauge(key[0], labels)
                inst.set(value)
            for name, labels, count, total, mn, mx in hists:
                key = (prefix + name, labels)
                hist = self._histograms.get(key)
                if hist is None:
                    hist = self._histograms[key] = Histogram(key[0], labels)
                hist.count += count
                hist.total += total
                if mn is not None:
                    hist.min = mn if hist.min is None else min(hist.min, mn)
                if mx is not None:
                    hist.max = mx if hist.max is None else max(hist.max, mx)

    def clear_namespace(self, prefix: str) -> None:
        dot = prefix + "."
        with self._lock:
            for table in (self._counters, self._gauges, self._histograms):
                for key in [k for k in table if k[0].startswith(dot)]:
                    del table[key]

    def snapshot(self) -> Dict[str, Any]:
        """The flat ``{rendered-name: value}`` dict of the whole
        registry — the metrics-JSON schema (see docs).  Histograms
        expand to ``.count/.sum/.min/.max``; series are included as
        lists of rows under their bare name."""
        out: Dict[str, Any] = {}
        with self._lock:
            for inst in self._counters.values():
                out[_render(inst.name, inst.labels)] = inst.value
            for inst in self._gauges.values():
                out[_render(inst.name, inst.labels)] = inst.value
            for hist in self._histograms.values():
                for suffix, value in hist.summary().items():
                    out[_render(f"{hist.name}.{suffix}", hist.labels)] = value
            for name, rows in self._series.items():
                out[name] = [dict(r) for r in rows]
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
                + len(self._series)
            )
