"""Exporters: NDJSON spans, Chrome trace events, flat metrics JSON.

Three formats, one schema family (validated by :mod:`repro.obs.schema`):

* ``--trace-out`` — newline-delimited JSON, one span per line (the
  :meth:`~repro.obs.tracer.Span.as_dict` shape).  Greppable, streamable,
  lossless.
* ``--trace-chrome`` — the Chrome trace-event format (a JSON object with
  a ``traceEvents`` array of ``"ph": "X"`` complete events), loadable in
  ``chrome://tracing`` and Perfetto.  Spans keep their originating
  ``pid``/``tid`` so pool-solved queries appear on their worker's track,
  and parentage is preserved in each event's ``args``.
* ``--metrics-out`` — ``{"meta": {...}, "metrics": {...}}`` where
  ``metrics`` is a flat :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.

:func:`run_meta` builds the uniform ``meta`` block (git sha, python
version, platform, UTC timestamp, config digest) that the bench runner
also stamps into every ``BENCH_*.json``, making artifacts from different
CI matrix entries distinguishable.
"""

from __future__ import annotations

import json
import pathlib
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .metrics import MetricsRegistry
from .tracer import Span

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "run_meta",
    "spans_to_chrome_events",
    "write_chrome_trace",
    "write_metrics_json",
    "write_trace_ndjson",
    "read_trace_ndjson",
]

TRACE_SCHEMA_VERSION = 1
METRICS_SCHEMA_VERSION = 1


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_meta(config_digest: Optional[str] = None, **extra) -> Dict[str, Any]:
    """The uniform provenance block stamped into every exported file."""
    meta: Dict[str, Any] = {
        "schema": METRICS_SCHEMA_VERSION,
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    if config_digest is not None:
        meta["config_digest"] = config_digest
    meta.update(extra)
    return meta


# ----- NDJSON spans ----------------------------------------------------------


def write_trace_ndjson(spans: Sequence[Span], path) -> int:
    """One JSON object per line; the first line is the meta record."""
    path = pathlib.Path(path)
    lines = [json.dumps({"meta": run_meta(), "kind": "trace"}, sort_keys=True)]
    for span in spans:
        lines.append(json.dumps(span.as_dict(), sort_keys=True))
    path.write_text("\n".join(lines) + "\n")
    return len(spans)


def read_trace_ndjson(path) -> List[Dict[str, Any]]:
    """Parse an NDJSON trace back into span dicts (meta line skipped)."""
    records: List[Dict[str, Any]] = []
    for line in pathlib.Path(path).read_text().splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        if "meta" in obj and "span_id" not in obj:
            continue
        records.append(obj)
    return records


# ----- Chrome trace events ---------------------------------------------------


def spans_to_chrome_events(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for span in spans:
        end = span.end if span.end is not None else time.time()
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(":")[0].split(".")[0],
                "ph": "X",
                "ts": span.start * 1e6,  # microseconds, Chrome's unit
                "dur": max(0.0, (end - span.start) * 1e6),
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    return events


def write_chrome_trace(spans: Sequence[Span], path) -> int:
    """A ``chrome://tracing`` / Perfetto-loadable trace file."""
    payload = {
        "traceEvents": spans_to_chrome_events(spans),
        "displayTimeUnit": "ms",
        "otherData": run_meta(),
    }
    pathlib.Path(path).write_text(json.dumps(payload, sort_keys=True))
    return len(payload["traceEvents"])


# ----- metrics JSON ----------------------------------------------------------


def write_metrics_json(
    path,
    registry: Optional[MetricsRegistry] = None,
    files: Optional[Dict[str, Dict[str, Any]]] = None,
    config_digest: Optional[str] = None,
) -> Dict[str, Any]:
    """``{"meta": ..., "metrics": ...}`` — or, for a multi-file CLI run,
    ``{"meta": ..., "files": {path: metrics}}``."""
    doc: Dict[str, Any] = {"meta": run_meta(config_digest=config_digest)}
    if files is not None:
        doc["files"] = files
    if registry is not None:
        doc["metrics"] = registry.snapshot()
    pathlib.Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc
