"""Schema validation for the exported observability artifacts.

Hand-rolled (the toolchain has no ``jsonschema``), but strict: every
check here is documented in ``docs/architecture.md`` §12, CI runs them
against a real corpus export, and ``tests/test_observability.py``
exercises both the accepting and the rejecting paths.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List

__all__ = [
    "SchemaError",
    "validate_chrome_trace_file",
    "validate_metrics_doc",
    "validate_metrics_file",
    "validate_span",
    "validate_trace_file",
]


class SchemaError(ValueError):
    """An exported artifact does not match the documented schema."""


_SPAN_REQUIRED = {
    "name": str,
    "trace_id": str,
    "span_id": str,
    "start": (int, float),
    "attrs": dict,
    "pid": int,
    "tid": int,
}

_META_REQUIRED = {"schema", "git_sha", "python", "platform", "timestamp"}


def _fail(msg: str) -> None:
    raise SchemaError(msg)


def validate_span(obj: Dict[str, Any], where: str = "span") -> None:
    if not isinstance(obj, dict):
        _fail(f"{where}: expected an object, got {type(obj).__name__}")
    for key, types in _SPAN_REQUIRED.items():
        if key not in obj:
            _fail(f"{where}: missing required key {key!r}")
        if not isinstance(obj[key], types):
            _fail(f"{where}: key {key!r} has type {type(obj[key]).__name__}")
    parent = obj.get("parent_id")
    if parent is not None and not isinstance(parent, str):
        _fail(f"{where}: parent_id must be a string or null")
    end = obj.get("end")
    if end is not None:
        if not isinstance(end, (int, float)):
            _fail(f"{where}: end must be a number or null")
        if end < obj["start"]:
            _fail(f"{where}: end precedes start")
    for akey, avalue in obj["attrs"].items():
        if not isinstance(akey, str):
            _fail(f"{where}: attr keys must be strings")
        if not isinstance(avalue, (str, int, float, bool, type(None))):
            _fail(f"{where}: attr {akey!r} must be a JSON scalar")


def _validate_meta(meta: Any, where: str) -> None:
    if not isinstance(meta, dict):
        _fail(f"{where}: meta must be an object")
    missing = _META_REQUIRED - set(meta)
    if missing:
        _fail(f"{where}: meta missing {sorted(missing)}")


def validate_trace_file(path) -> int:
    """Validate an NDJSON span file; returns the number of spans.

    Structural checks beyond per-span shape: span ids are unique, and
    every non-null parent_id refers to a span in the same file (the
    nesting invariant the Chrome exporter relies on).
    """
    lines = pathlib.Path(path).read_text().splitlines()
    spans: List[Dict[str, Any]] = []
    saw_meta = False
    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            _fail(f"line {i}: not valid JSON ({exc})")
        if "span_id" not in obj and "meta" in obj:
            _validate_meta(obj["meta"], f"line {i}")
            saw_meta = True
            continue
        validate_span(obj, where=f"line {i}")
        spans.append(obj)
    if not saw_meta:
        _fail("trace file has no meta record")
    ids = [s["span_id"] for s in spans]
    if len(ids) != len(set(ids)):
        _fail("duplicate span ids")
    known = set(ids)
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in known:
            _fail(f"span {span['span_id']} has dangling parent {parent!r}")
    return len(spans)


def validate_chrome_trace_file(path) -> int:
    """Validate a Chrome trace-event file; returns the event count."""
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        _fail(f"not valid JSON ({exc})")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        _fail("missing traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        _fail("traceEvents must be an array")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            _fail(f"{where}: expected an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                _fail(f"{where}: missing {key!r}")
        if ev["ph"] == "X" and "dur" not in ev:
            _fail(f"{where}: complete event without dur")
        if not isinstance(ev["ts"], (int, float)):
            _fail(f"{where}: ts must be a number")
    if "otherData" in doc:
        _validate_meta(doc["otherData"], "otherData")
    return len(events)


def validate_metrics_doc(doc: Dict[str, Any], where: str = "metrics") -> int:
    """Validate an in-memory metrics document; returns the metric count."""
    if not isinstance(doc, dict):
        _fail(f"{where}: expected an object")
    if "meta" not in doc:
        _fail(f"{where}: missing meta block")
    _validate_meta(doc["meta"], where)
    if "metrics" not in doc and "files" not in doc:
        _fail(f"{where}: needs a 'metrics' or 'files' section")
    count = 0

    def check_flat(flat: Any, fwhere: str) -> int:
        if not isinstance(flat, dict):
            _fail(f"{fwhere}: must be an object")
        n = 0
        for key, value in flat.items():
            if not isinstance(key, str):
                _fail(f"{fwhere}: metric names must be strings")
            if isinstance(value, list):  # a series: rows of scalars
                for row in value:
                    if not isinstance(row, dict):
                        _fail(f"{fwhere}: series {key!r} rows must be objects")
            elif not isinstance(value, (int, float, bool)):
                _fail(f"{fwhere}: metric {key!r} must be numeric")
            n += 1
        return n

    if "metrics" in doc:
        count += check_flat(doc["metrics"], f"{where}.metrics")
    for fname, flat in doc.get("files", {}).items():
        count += check_flat(flat, f"{where}.files[{fname!r}]")
    return count


def validate_metrics_file(path) -> int:
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        _fail(f"not valid JSON ({exc})")
    return validate_metrics_doc(doc, where=str(path))
