"""Lazy DPLL(T) solver: CDCL SAT core + difference-logic theory.

This is the "dedicated SMT solver" of the paper's workflow (Fig. 1): the
aggregated guards and partial-order constraints of a value-flow path are
asserted here and :meth:`Solver.check` decides realizability.

Architecture (classic lazy SMT):

1. assertions are lightly simplified (:mod:`repro.smt.simplify`) and
   Tseitin-encoded to CNF (:mod:`repro.smt.cnf`);
2. the CDCL core (:mod:`repro.smt.sat`) enumerates propositional models;
3. the difference-logic solver (:mod:`repro.smt.theory`) checks the
   arithmetic literals of each model; an inconsistency yields a negative
   cycle whose literals form a blocking clause, and the loop repeats.

Unsatisfiable cores from the theory are exactly the bounds on one
negative cycle, so blocking clauses are short and convergence is fast on
Canary's order constraints.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .cnf import CnfEncoder
from .sat import SAT, UNKNOWN, UNSAT, SatSolver
from .simplify import quick_unsat
from .terms import (
    And,
    BoolConst,
    BoolTerm,
    BoolVar,
    Eq,
    FALSE,
    IntVar,
    Le,
    Lt,
    Not,
    Or,
    TRUE,
    and_,
    int_var,
)
from .theory import DifferenceLogicSolver, ZERO_NAME, negate_bound, normalize_atom

__all__ = [
    "Solver",
    "IncrementalSolver",
    "Model",
    "Result",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "is_satisfiable",
    "solve_formula",
    "reset_warm_solvers",
    "warm_solver_counters",
]

Result = str

_eq_cache: Dict[BoolTerm, BoolTerm] = {}


def _eliminate_eq(term: BoolTerm) -> BoolTerm:
    """Rewrite every ``Eq(a, b)`` atom as ``Le(a, b) and Le(b, a)``.

    After this pass every arithmetic atom is a single difference bound
    whose negation is again a single difference bound, so the lazy theory
    loop never needs to case-split on disequalities.
    """
    cached = _eq_cache.get(term)
    if cached is not None:
        return cached
    if isinstance(term, Eq):
        from .terms import le

        out = and_(le(term.lhs, term.rhs), le(term.rhs, term.lhs))
    elif isinstance(term, Not):
        out = ~_eliminate_eq(term.arg)
    elif isinstance(term, And):
        out = and_(*(_eliminate_eq(a) for a in term.args))
    elif isinstance(term, Or):
        from .terms import or_

        out = or_(*(_eliminate_eq(a) for a in term.args))
    else:
        out = term
    _eq_cache[term] = out
    return out


class Model:
    """A satisfying assignment for booleans and integer variables."""

    def __init__(self, bools: Dict[BoolTerm, bool], ints: Dict[str, int]) -> None:
        self._bools = bools
        self._ints = ints

    def bool_value(self, atom: BoolTerm) -> Optional[bool]:
        return self._bools.get(atom)

    def int_value(self, var) -> Optional[int]:
        name = var.name if isinstance(var, IntVar) else str(var)
        return self._ints.get(name)

    def eval(self, term) -> Optional[object]:
        """Evaluate a term under the model (None if underdetermined)."""
        if isinstance(term, BoolConst):
            return term.value
        if isinstance(term, BoolVar):
            return self._bools.get(term)
        if isinstance(term, Not):
            v = self.eval(term.arg)
            return None if v is None else not v
        if isinstance(term, And):
            vals = [self.eval(a) for a in term.args]
            if any(v is False for v in vals):
                return False
            if all(v is True for v in vals):
                return True
            return None
        if isinstance(term, Or):
            vals = [self.eval(a) for a in term.args]
            if any(v is True for v in vals):
                return True
            if all(v is False for v in vals):
                return False
            return None
        if isinstance(term, (Le, Lt, Eq)):
            direct = self._bools.get(term)
            if direct is not None:
                return direct
            lhs = self._eval_int(term.lhs)
            rhs = self._eval_int(term.rhs)
            if lhs is None or rhs is None:
                return None
            if isinstance(term, Le):
                return lhs <= rhs
            if isinstance(term, Lt):
                return lhs < rhs
            return lhs == rhs
        if isinstance(term, IntVar):
            return self._ints.get(term.name)
        return None

    def _eval_int(self, term) -> Optional[int]:
        from .terms import Add, IntConst, Sub

        if isinstance(term, IntConst):
            return term.value
        if isinstance(term, IntVar):
            return self._ints.get(term.name, 0)
        if isinstance(term, Add):
            a, b = self._eval_int(term.lhs), self._eval_int(term.rhs)
            return None if a is None or b is None else a + b
        if isinstance(term, Sub):
            a, b = self._eval_int(term.lhs), self._eval_int(term.rhs)
            return None if a is None or b is None else a - b
        return None

    def order(self) -> Dict[str, int]:
        """The integer assignment — for Canary, a witness interleaving."""
        return dict(self._ints)

    def bool_assignments(self) -> Dict[BoolTerm, bool]:
        """All boolean atom assignments (atoms as terms)."""
        return dict(self._bools)


class Solver:
    """One-shot SMT solver instance (create, ``add`` assertions, ``check``).

    ``max_conflicts`` bounds the CDCL core per :meth:`check`;
    ``timeout`` (seconds) sets a wall deadline spanning the whole lazy
    loop (SAT search *and* theory rounds).  Exhausting either yields
    :data:`UNKNOWN` — distinct from both verdicts — with the cause in
    :attr:`unknown_reason` (``'conflicts'``, ``'deadline'``, or
    ``'theory-rounds'``).
    """

    def __init__(
        self,
        max_theory_rounds: int = 10_000,
        max_conflicts: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self._assertions: List[BoolTerm] = []
        self._max_theory_rounds = max_theory_rounds
        self._max_conflicts = max_conflicts
        self._timeout = timeout
        self._model: Optional[Model] = None
        #: why the last check() returned UNKNOWN (None otherwise)
        self.unknown_reason: Optional[str] = None
        self.statistics: Dict[str, int] = {"theory_rounds": 0, "sat_conflicts": 0, "quick_refuted": 0}

    def add(self, *terms: BoolTerm) -> None:
        for t in terms:
            self._assertions.append(t)

    # Assertion-stack interface (check() is stateless over the assertion
    # list, so push/pop are exact).
    def push(self) -> None:
        self._scopes = getattr(self, "_scopes", [])
        self._scopes.append(len(self._assertions))

    def pop(self) -> None:
        scopes = getattr(self, "_scopes", [])
        if not scopes:
            raise IndexError("pop without matching push")
        del self._assertions[scopes.pop() :]

    def assertions(self) -> List[BoolTerm]:
        return list(self._assertions)

    def check(self) -> Result:
        self._model = None
        self.unknown_reason = None
        deadline = (
            time.monotonic() + self._timeout if self._timeout is not None else None
        )
        formula = and_(*self._assertions) if self._assertions else TRUE
        if formula is TRUE:
            self._model = Model({}, {})
            return SAT
        if formula is FALSE or quick_unsat(formula):
            self.statistics["quick_refuted"] += 1
            return UNSAT
        formula = _eliminate_eq(formula)
        if formula is FALSE:
            return UNSAT
        if formula is TRUE:
            self._model = Model({}, {})
            return SAT
        encoder = CnfEncoder()
        encoder.add_assertion(formula)
        sat = SatSolver()
        for clause in encoder.clauses:
            if not sat.add_clause(clause):
                return UNSAT
        theory_vars = encoder.theory_atoms()
        for _ in range(self._max_theory_rounds):
            if deadline is not None and time.monotonic() >= deadline:
                self.unknown_reason = "deadline"
                return UNKNOWN
            self.statistics["theory_rounds"] += 1
            result = sat.solve(max_conflicts=self._max_conflicts, deadline=deadline)
            self.statistics["sat_conflicts"] = sat.conflicts
            if result is UNSAT:
                return UNSAT
            if result is UNKNOWN:
                self.unknown_reason = sat.unknown_reason or "conflicts"
                return UNKNOWN
            model = sat.model
            theory = DifferenceLogicSolver()
            for var, atom in theory_vars.items():
                value = model.get(var)
                if value is None:
                    continue
                try:
                    bounds = normalize_atom(atom)
                except ValueError:
                    continue  # outside the fragment: treated as free boolean
                if bounds is None:
                    continue
                lit = var if value else -var
                if value:
                    for b in bounds:
                        theory.assert_bound(b, lit)
                else:
                    theory.assert_bound(negate_bound(bounds[0]), lit)
            core = theory.check()
            if core is None:
                self._model = self._build_model(encoder, model, theory)
                return SAT
            if not sat.add_clause(sorted({-lit for lit in core})):
                return UNSAT
        self.unknown_reason = "theory-rounds"
        return UNKNOWN

    def _build_model(self, encoder: CnfEncoder, sat_model: Dict[int, bool], theory: DifferenceLogicSolver) -> Model:
        bools: Dict[BoolTerm, bool] = {}
        for var, atom in encoder.atom_of_var.items():
            if var in sat_model:
                bools[atom] = sat_model[var]
        ints = theory.model()
        ints.pop(ZERO_NAME, None)
        return Model(bools, ints)

    def model(self) -> Optional[Model]:
        return self._model


class IncrementalSolver:
    """Warm, assumption-based DPLL(T) solver for a *family* of queries.

    Sibling value-flow paths enumerated from one sink share long guard
    prefixes and identical partial-order skeletons, so their formulas
    overlap heavily.  This solver amortizes that overlap with the classic
    ship-once / assume-many scheme:

    * every distinct top-level conjunct is Tseitin-encoded **once** into a
      shared CNF; a fresh *activation literal* ``a`` is linked to the
      conjunct's gate ``g`` by the permanent clause ``(-a, g)``;
    * a query is decided by solving under ``assumptions = [a_1 .. a_k]``
      for its conjuncts — no clauses are ever retracted, so every learnt
      clause carries over to the next sibling;
    * theory blocking clauses (negative-cycle cores from the
      difference-logic solver) are globally valid facts about the order
      atoms, so they too are retained permanently.

    Theory reasoning and model extraction are restricted to the atoms of
    the *current* query's conjuncts: atoms shipped by earlier queries are
    left free and never pollute a sibling's theory rounds or witness.

    Instances are not thread-safe; wrap calls in :attr:`lock` when shared
    (the warm-solver registry below does).
    """

    def __init__(self, max_theory_rounds: int = 10_000) -> None:
        self._encoder = CnfEncoder()
        self._sat = SatSolver()
        self._shipped = 0  # encoder clauses already added to the SAT core
        self._activation: Dict[BoolTerm, int] = {}
        self._atoms: Dict[BoolTerm, Tuple[int, ...]] = {}
        #: per conjunct: its full decision cluster (atom + gate +
        #: activation vars) — the only variables a query restricted to
        #: this conjunct needs to branch on
        self._cluster: Dict[BoolTerm, Tuple[int, ...]] = {}
        #: per atom var: normalized difference bounds (None = outside the
        #: fragment) — atoms recur across every sibling's theory rounds,
        #: so normalization is done once per family, not once per round
        self._bounds: Dict[int, Optional[Tuple]] = {}
        self._max_theory_rounds = max_theory_rounds
        self.lock = threading.Lock()
        #: set when the shared clause set became globally UNSAT — cannot
        #: happen for well-formed queries (gates and lemmas are all
        #: individually satisfiable), so callers treat it as "rebuild me"
        self.poisoned = False
        self.statistics: Dict[str, int] = {
            "queries": 0,
            "conjuncts_new": 0,
            "conjuncts_reused": 0,
            "theory_rounds": 0,
            "theory_lemmas": 0,
            "quick_refuted": 0,
            "sat_conflicts": 0,
            "sat_propagations": 0,
            "sat_restarts": 0,
            "sat_learned": 0,
        }

    def _collect_atom_vars(self, term: BoolTerm) -> Tuple[int, ...]:
        out: Set[int] = set()
        stack = [term]
        while stack:
            t = stack.pop()
            if isinstance(t, (BoolVar, Le, Lt, Eq)):
                out.add(self._encoder.var_for_atom(t))
            elif isinstance(t, Not):
                stack.append(t.arg)
            elif isinstance(t, (And, Or)):
                stack.extend(t.args)
        return tuple(sorted(out))

    def _activate(self, conjunct: BoolTerm) -> int:
        """Activation literal for a conjunct, encoding it on first sight."""
        act = self._activation.get(conjunct)
        if act is not None:
            self.statistics["conjuncts_reused"] += 1
            return act
        self.statistics["conjuncts_new"] += 1
        encoder = self._encoder
        sat = self._sat
        lit = encoder.encode_literal(conjunct)
        act = encoder.fresh_var()
        clauses = encoder.clauses
        for i in range(self._shipped, len(clauses)):
            if not sat.add_clause(clauses[i]):
                self.poisoned = True
        self._shipped = len(clauses)
        sat.ensure_var(act)
        if not sat.add_clause([-act, lit]):
            self.poisoned = True
        self._activation[conjunct] = act
        self._atoms[conjunct] = self._collect_atom_vars(conjunct)
        self._cluster[conjunct] = tuple(encoder.cluster_vars(conjunct)) + (act,)
        return act

    def check_formula(
        self,
        formula: BoolTerm,
        max_conflicts: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[Result, Optional[Model], str]:
        """Decide one formula against the warm state.

        Returns ``(verdict, model_or_None, unknown_reason)``; the model is
        restricted to the atoms of this formula's conjuncts.
        """
        stats = self.statistics
        stats["queries"] += 1
        deadline = time.monotonic() + timeout if timeout is not None else None
        if formula is TRUE:
            return SAT, Model({}, {}), ""
        if formula is FALSE or quick_unsat(formula):
            stats["quick_refuted"] += 1
            return UNSAT, None, ""
        formula = _eliminate_eq(formula)
        if formula is FALSE:
            return UNSAT, None, ""
        if formula is TRUE:
            return SAT, Model({}, {}), ""
        sat = self._sat
        c0, p0 = sat.conflicts, sat.propagations
        r0, l0 = sat.restarts, sat.learned
        try:
            conjuncts: Iterable[BoolTerm] = (
                formula.args if isinstance(formula, And) else (formula,)
            )
            assumptions: List[int] = []
            relevant: Set[int] = set()
            decisions: Set[int] = set()
            for conjunct in conjuncts:
                assumptions.append(self._activate(conjunct))
                relevant.update(self._atoms[conjunct])
                decisions.update(self._cluster[conjunct])
            if self.poisoned:
                return UNSAT, None, ""
            atom_of_var = self._encoder.atom_of_var
            bounds_of = self._bounds
            theory_vars = []
            for v in sorted(relevant):
                atom = atom_of_var[v]
                if not isinstance(atom, (Le, Lt, Eq)):
                    continue
                if v not in bounds_of:
                    try:
                        normalized = normalize_atom(atom)
                    except ValueError:
                        normalized = None  # outside the fragment
                    bounds_of[v] = (
                        tuple(normalized) if normalized is not None else None
                    )
                if bounds_of[v] is not None:
                    theory_vars.append((v, bounds_of[v]))
            for _ in range(self._max_theory_rounds):
                if deadline is not None and time.monotonic() >= deadline:
                    return UNKNOWN, None, "deadline"
                stats["theory_rounds"] += 1
                result = sat.solve(
                    max_conflicts=max_conflicts,
                    deadline=deadline,
                    assumptions=assumptions,
                    model_vars=relevant,
                    decision_vars=decisions,
                )
                if result is UNSAT:
                    self.poisoned = self.poisoned or not sat.ok
                    return UNSAT, None, ""
                if result is UNKNOWN:
                    return UNKNOWN, None, sat.unknown_reason or "conflicts"
                model = sat.model
                theory = DifferenceLogicSolver()
                for var, bounds in theory_vars:
                    value = model.get(var)
                    if value is None:
                        continue
                    lit = var if value else -var
                    if value:
                        for b in bounds:
                            theory.assert_bound(b, lit)
                    else:
                        theory.assert_bound(negate_bound(bounds[0]), lit)
                core = theory.check()
                if core is None:
                    bools = {
                        atom_of_var[v]: model[v] for v in relevant if v in model
                    }
                    ints = theory.model()
                    ints.pop(ZERO_NAME, None)
                    return SAT, Model(bools, ints), ""
                stats["theory_lemmas"] += 1
                # Negative-cycle cores are valid regardless of which
                # conjuncts are active: retain them permanently.
                if not sat.add_clause(sorted({-lit for lit in core})):
                    self.poisoned = self.poisoned or not sat.ok
                    return UNSAT, None, ""
            return UNKNOWN, None, "theory-rounds"
        finally:
            stats["sat_conflicts"] += sat.conflicts - c0
            stats["sat_propagations"] += sat.propagations - p0
            stats["sat_restarts"] += sat.restarts - r0
            stats["sat_learned"] += sat.learned - l0


# --- per-process warm-solver registry -----------------------------------
#
# One IncrementalSolver per path family (for Canary: per sink), kept alive
# for the process lifetime so sibling queries arriving at the same pool
# worker (or the in-process serial/thread backends) hit warm state.  The
# registry is LRU-bounded; cumulative counters survive eviction.

_WARM_LIMIT = 32
_warm_solvers: "OrderedDict[str, IncrementalSolver]" = OrderedDict()
_warm_lock = threading.Lock()
_warm_totals: Dict[str, int] = {}


def _warm_solver(family: str) -> IncrementalSolver:
    with _warm_lock:
        solver = _warm_solvers.get(family)
        if solver is None or solver.poisoned:
            solver = IncrementalSolver()
            _warm_solvers[family] = solver
        _warm_solvers.move_to_end(family)
        while len(_warm_solvers) > _WARM_LIMIT:
            _warm_solvers.popitem(last=False)
        return solver


def _account_warm(delta: Dict[str, int]) -> None:
    with _warm_lock:
        for key, value in delta.items():
            _warm_totals[key] = _warm_totals.get(key, 0) + value


def reset_warm_solvers() -> None:
    """Drop all warm per-family solvers and counters (tests/benchmarks)."""
    with _warm_lock:
        _warm_solvers.clear()
        _warm_totals.clear()


def warm_solver_counters() -> Dict[str, int]:
    """Cumulative counters across all warm solves in this process."""
    with _warm_lock:
        out = dict(_warm_totals)
        out["warm_families"] = len(_warm_solvers)
        return out


def is_satisfiable(*terms: BoolTerm) -> bool:
    """Convenience one-shot satisfiability query."""
    solver = Solver()
    solver.add(*terms)
    return solver.check() is SAT


def solve_formula(
    formula: BoolTerm,
    max_conflicts: Optional[int] = None,
    use_cube: bool = False,
    timeout: Optional[float] = None,
    recorder=None,
    family: Optional[str] = None,
) -> Tuple[Result, Dict[str, int], Dict[str, bool], float, str]:
    """Decide one formula and return only plain picklable data.

    This is the unit of work the parallel realizability backends ship to
    workers: ``(verdict, int_assignment, bool_atom_assignment,
    solve_seconds, unknown_reason)``.  The formula itself pickles
    structurally (terms re-intern on load), and the result deliberately
    contains no ``Model`` or term objects so it crosses a process
    boundary cheaply.  ``timeout`` is the per-query wall budget in
    seconds (relative, so it is meaningful in any worker process); an
    exhausted budget yields ``UNKNOWN`` with ``unknown_reason`` set
    (``''`` on decided verdicts).

    ``recorder`` is an optional :class:`~repro.obs.tracer.SpanRecorder`;
    when given, the solve is wrapped in a ``solver.solve`` span carrying
    the verdict and the solver's own counters (theory rounds, SAT
    conflicts).  Works identically in-process and in pool workers.

    ``family`` routes the query to the process-local warm
    :class:`IncrementalSolver` for that path family (ship-once /
    assume-many), so sibling queries reuse each other's CNF encoding,
    learnt clauses, and theory lemmas.  ``None`` (or ``use_cube``)
    solves one-shot as before.
    """
    from ..testing.faults import fault_point

    span = recorder.span("solver.solve", cube=use_cube) if recorder is not None else None
    t0 = time.perf_counter()
    t0_mono = time.monotonic()
    fault_point("solver:solve")
    if timeout is not None:
        # The budget is anchored at query entry: time lost before the
        # solver proper starts (e.g. an injected stall) counts against it.
        timeout = max(0.0, timeout - (time.monotonic() - t0_mono))
    reason = ""
    if use_cube:
        from .portfolio import cube_solve_model

        verdict, model, reason = cube_solve_model(
            formula, max_conflicts=max_conflicts, timeout=timeout, recorder=recorder
        )
    elif family is not None:
        solver = _warm_solver(family)
        with solver.lock:
            before = dict(solver.statistics)
            verdict, model, reason = solver.check_formula(
                formula, max_conflicts=max_conflicts, timeout=timeout
            )
            delta = {
                key: value - before.get(key, 0)
                for key, value in solver.statistics.items()
            }
        _account_warm(delta)
        if span is not None:
            span.set("family", family)
            for key, value in delta.items():
                if value:
                    span.set(key, value)
    else:
        solver = Solver(max_conflicts=max_conflicts, timeout=timeout)
        solver.add(formula)
        verdict = solver.check()
        model = solver.model()
        reason = solver.unknown_reason or ""
        if span is not None:
            for key, value in solver.statistics.items():
                span.set(key, value)
    ints: Dict[str, int] = {}
    bools: Dict[str, bool] = {}
    if verdict is SAT and model is not None:
        ints = model.order()
        for atom, truth in model.bool_assignments().items():
            if isinstance(atom, BoolVar):
                bools[atom.name] = truth
    if verdict is not UNKNOWN:
        reason = ""
    if span is not None:
        span.set("verdict", verdict)
        if reason:
            span.set("unknown_reason", reason)
        span.__exit__(None, None, None)
    return verdict, ints, bools, time.perf_counter() - t0, reason
