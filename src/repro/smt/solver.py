"""Lazy DPLL(T) solver: CDCL SAT core + difference-logic theory.

This is the "dedicated SMT solver" of the paper's workflow (Fig. 1): the
aggregated guards and partial-order constraints of a value-flow path are
asserted here and :meth:`Solver.check` decides realizability.

Architecture (classic lazy SMT):

1. assertions are lightly simplified (:mod:`repro.smt.simplify`) and
   Tseitin-encoded to CNF (:mod:`repro.smt.cnf`);
2. the CDCL core (:mod:`repro.smt.sat`) enumerates propositional models;
3. the difference-logic solver (:mod:`repro.smt.theory`) checks the
   arithmetic literals of each model; an inconsistency yields a negative
   cycle whose literals form a blocking clause, and the loop repeats.

Unsatisfiable cores from the theory are exactly the bounds on one
negative cycle, so blocking clauses are short and convergence is fast on
Canary's order constraints.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from .cnf import CnfEncoder
from .sat import SAT, UNKNOWN, UNSAT, SatSolver
from .simplify import quick_unsat
from .terms import (
    And,
    BoolConst,
    BoolTerm,
    BoolVar,
    Eq,
    FALSE,
    IntVar,
    Le,
    Lt,
    Not,
    Or,
    TRUE,
    and_,
    int_var,
)
from .theory import DifferenceLogicSolver, ZERO_NAME, negate_bound, normalize_atom

__all__ = [
    "Solver",
    "Model",
    "Result",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "is_satisfiable",
    "solve_formula",
]

Result = str

_eq_cache: Dict[BoolTerm, BoolTerm] = {}


def _eliminate_eq(term: BoolTerm) -> BoolTerm:
    """Rewrite every ``Eq(a, b)`` atom as ``Le(a, b) and Le(b, a)``.

    After this pass every arithmetic atom is a single difference bound
    whose negation is again a single difference bound, so the lazy theory
    loop never needs to case-split on disequalities.
    """
    cached = _eq_cache.get(term)
    if cached is not None:
        return cached
    if isinstance(term, Eq):
        from .terms import le

        out = and_(le(term.lhs, term.rhs), le(term.rhs, term.lhs))
    elif isinstance(term, Not):
        out = ~_eliminate_eq(term.arg)
    elif isinstance(term, And):
        out = and_(*(_eliminate_eq(a) for a in term.args))
    elif isinstance(term, Or):
        from .terms import or_

        out = or_(*(_eliminate_eq(a) for a in term.args))
    else:
        out = term
    _eq_cache[term] = out
    return out


class Model:
    """A satisfying assignment for booleans and integer variables."""

    def __init__(self, bools: Dict[BoolTerm, bool], ints: Dict[str, int]) -> None:
        self._bools = bools
        self._ints = ints

    def bool_value(self, atom: BoolTerm) -> Optional[bool]:
        return self._bools.get(atom)

    def int_value(self, var) -> Optional[int]:
        name = var.name if isinstance(var, IntVar) else str(var)
        return self._ints.get(name)

    def eval(self, term) -> Optional[object]:
        """Evaluate a term under the model (None if underdetermined)."""
        if isinstance(term, BoolConst):
            return term.value
        if isinstance(term, BoolVar):
            return self._bools.get(term)
        if isinstance(term, Not):
            v = self.eval(term.arg)
            return None if v is None else not v
        if isinstance(term, And):
            vals = [self.eval(a) for a in term.args]
            if any(v is False for v in vals):
                return False
            if all(v is True for v in vals):
                return True
            return None
        if isinstance(term, Or):
            vals = [self.eval(a) for a in term.args]
            if any(v is True for v in vals):
                return True
            if all(v is False for v in vals):
                return False
            return None
        if isinstance(term, (Le, Lt, Eq)):
            direct = self._bools.get(term)
            if direct is not None:
                return direct
            lhs = self._eval_int(term.lhs)
            rhs = self._eval_int(term.rhs)
            if lhs is None or rhs is None:
                return None
            if isinstance(term, Le):
                return lhs <= rhs
            if isinstance(term, Lt):
                return lhs < rhs
            return lhs == rhs
        if isinstance(term, IntVar):
            return self._ints.get(term.name)
        return None

    def _eval_int(self, term) -> Optional[int]:
        from .terms import Add, IntConst, Sub

        if isinstance(term, IntConst):
            return term.value
        if isinstance(term, IntVar):
            return self._ints.get(term.name, 0)
        if isinstance(term, Add):
            a, b = self._eval_int(term.lhs), self._eval_int(term.rhs)
            return None if a is None or b is None else a + b
        if isinstance(term, Sub):
            a, b = self._eval_int(term.lhs), self._eval_int(term.rhs)
            return None if a is None or b is None else a - b
        return None

    def order(self) -> Dict[str, int]:
        """The integer assignment — for Canary, a witness interleaving."""
        return dict(self._ints)

    def bool_assignments(self) -> Dict[BoolTerm, bool]:
        """All boolean atom assignments (atoms as terms)."""
        return dict(self._bools)


class Solver:
    """One-shot SMT solver instance (create, ``add`` assertions, ``check``).

    ``max_conflicts`` bounds the CDCL core per :meth:`check`;
    ``timeout`` (seconds) sets a wall deadline spanning the whole lazy
    loop (SAT search *and* theory rounds).  Exhausting either yields
    :data:`UNKNOWN` — distinct from both verdicts — with the cause in
    :attr:`unknown_reason` (``'conflicts'``, ``'deadline'``, or
    ``'theory-rounds'``).
    """

    def __init__(
        self,
        max_theory_rounds: int = 10_000,
        max_conflicts: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self._assertions: List[BoolTerm] = []
        self._max_theory_rounds = max_theory_rounds
        self._max_conflicts = max_conflicts
        self._timeout = timeout
        self._model: Optional[Model] = None
        #: why the last check() returned UNKNOWN (None otherwise)
        self.unknown_reason: Optional[str] = None
        self.statistics: Dict[str, int] = {"theory_rounds": 0, "sat_conflicts": 0, "quick_refuted": 0}

    def add(self, *terms: BoolTerm) -> None:
        for t in terms:
            self._assertions.append(t)

    # Assertion-stack interface (check() is stateless over the assertion
    # list, so push/pop are exact).
    def push(self) -> None:
        self._scopes = getattr(self, "_scopes", [])
        self._scopes.append(len(self._assertions))

    def pop(self) -> None:
        scopes = getattr(self, "_scopes", [])
        if not scopes:
            raise IndexError("pop without matching push")
        del self._assertions[scopes.pop() :]

    def assertions(self) -> List[BoolTerm]:
        return list(self._assertions)

    def check(self) -> Result:
        self._model = None
        self.unknown_reason = None
        deadline = (
            time.monotonic() + self._timeout if self._timeout is not None else None
        )
        formula = and_(*self._assertions) if self._assertions else TRUE
        if formula is TRUE:
            self._model = Model({}, {})
            return SAT
        if formula is FALSE or quick_unsat(formula):
            self.statistics["quick_refuted"] += 1
            return UNSAT
        formula = _eliminate_eq(formula)
        if formula is FALSE:
            return UNSAT
        if formula is TRUE:
            self._model = Model({}, {})
            return SAT
        encoder = CnfEncoder()
        encoder.add_assertion(formula)
        sat = SatSolver()
        for clause in encoder.clauses:
            if not sat.add_clause(clause):
                return UNSAT
        theory_vars = encoder.theory_atoms()
        for _ in range(self._max_theory_rounds):
            if deadline is not None and time.monotonic() >= deadline:
                self.unknown_reason = "deadline"
                return UNKNOWN
            self.statistics["theory_rounds"] += 1
            result = sat.solve(max_conflicts=self._max_conflicts, deadline=deadline)
            self.statistics["sat_conflicts"] = sat.conflicts
            if result is UNSAT:
                return UNSAT
            if result is UNKNOWN:
                self.unknown_reason = sat.unknown_reason or "conflicts"
                return UNKNOWN
            model = sat.model
            theory = DifferenceLogicSolver()
            for var, atom in theory_vars.items():
                value = model.get(var)
                if value is None:
                    continue
                try:
                    bounds = normalize_atom(atom)
                except ValueError:
                    continue  # outside the fragment: treated as free boolean
                if bounds is None:
                    continue
                lit = var if value else -var
                if value:
                    for b in bounds:
                        theory.assert_bound(b, lit)
                else:
                    theory.assert_bound(negate_bound(bounds[0]), lit)
            core = theory.check()
            if core is None:
                self._model = self._build_model(encoder, model, theory)
                return SAT
            if not sat.add_clause(sorted({-lit for lit in core})):
                return UNSAT
        self.unknown_reason = "theory-rounds"
        return UNKNOWN

    def _build_model(self, encoder: CnfEncoder, sat_model: Dict[int, bool], theory: DifferenceLogicSolver) -> Model:
        bools: Dict[BoolTerm, bool] = {}
        for var, atom in encoder.atom_of_var.items():
            if var in sat_model:
                bools[atom] = sat_model[var]
        ints = theory.model()
        ints.pop(ZERO_NAME, None)
        return Model(bools, ints)

    def model(self) -> Optional[Model]:
        return self._model


def is_satisfiable(*terms: BoolTerm) -> bool:
    """Convenience one-shot satisfiability query."""
    solver = Solver()
    solver.add(*terms)
    return solver.check() is SAT


def solve_formula(
    formula: BoolTerm,
    max_conflicts: Optional[int] = None,
    use_cube: bool = False,
    timeout: Optional[float] = None,
    recorder=None,
) -> Tuple[Result, Dict[str, int], Dict[str, bool], float, str]:
    """Decide one formula and return only plain picklable data.

    This is the unit of work the parallel realizability backends ship to
    workers: ``(verdict, int_assignment, bool_atom_assignment,
    solve_seconds, unknown_reason)``.  The formula itself pickles
    structurally (terms re-intern on load), and the result deliberately
    contains no ``Model`` or term objects so it crosses a process
    boundary cheaply.  ``timeout`` is the per-query wall budget in
    seconds (relative, so it is meaningful in any worker process); an
    exhausted budget yields ``UNKNOWN`` with ``unknown_reason`` set
    (``''`` on decided verdicts).

    ``recorder`` is an optional :class:`~repro.obs.tracer.SpanRecorder`;
    when given, the solve is wrapped in a ``solver.solve`` span carrying
    the verdict and the solver's own counters (theory rounds, SAT
    conflicts).  Works identically in-process and in pool workers.
    """
    from ..testing.faults import fault_point

    span = recorder.span("solver.solve", cube=use_cube) if recorder is not None else None
    t0 = time.perf_counter()
    t0_mono = time.monotonic()
    fault_point("solver:solve")
    if timeout is not None:
        # The budget is anchored at query entry: time lost before the
        # solver proper starts (e.g. an injected stall) counts against it.
        timeout = max(0.0, timeout - (time.monotonic() - t0_mono))
    reason = ""
    if use_cube:
        from .portfolio import cube_solve_model

        verdict, model, reason = cube_solve_model(
            formula, max_conflicts=max_conflicts, timeout=timeout, recorder=recorder
        )
    else:
        solver = Solver(max_conflicts=max_conflicts, timeout=timeout)
        solver.add(formula)
        verdict = solver.check()
        model = solver.model()
        reason = solver.unknown_reason or ""
        if span is not None:
            for key, value in solver.statistics.items():
                span.set(key, value)
    ints: Dict[str, int] = {}
    bools: Dict[str, bool] = {}
    if verdict is SAT and model is not None:
        ints = model.order()
        for atom, truth in model.bool_assignments().items():
            if isinstance(atom, BoolVar):
                bools[atom.name] = truth
    if verdict is not UNKNOWN:
        reason = ""
    if span is not None:
        span.set("verdict", verdict)
        if reason:
            span.set("unknown_reason", reason)
        span.__exit__(None, None, None)
    return verdict, ints, bools, time.perf_counter() - t0, reason
