"""Integer difference logic (IDL) theory solver.

Every theory atom Canary produces — strict order atoms ``O_a < O_b``
(paper Eq. 2/4), and branch comparisons against constants — normalizes to a
difference bound ``x - y <= c`` (a distinguished *zero* variable stands in
for the constant side).  A conjunction of difference bounds is satisfiable
iff the corresponding weighted constraint graph has no negative cycle, so
consistency checking is a shortest-path computation and an unsatisfiable
core is exactly the set of bounds on one negative cycle.  This is the
textbook reduction used inside real SMT solvers (and by extension, inside
the Z3 backend the paper uses for its order constraints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from .terms import (
    Add,
    BoolTerm,
    Eq,
    IntConst,
    IntTerm,
    IntVar,
    Le,
    Lt,
    Not,
    Sub,
)

__all__ = [
    "DifferenceBound",
    "normalize_atom",
    "negate_bound",
    "DifferenceLogicSolver",
    "IncrementalBoundStore",
    "ZERO_NAME",
]

#: Name of the implicit variable fixed at 0 used to express unary bounds.
ZERO_NAME = "$zero"


@dataclass(frozen=True)
class DifferenceBound:
    """The constraint ``x - y <= c`` over integer variables ``x`` and ``y``."""

    x: str
    y: str
    c: int

    def pretty(self) -> str:
        return f"{self.x} - {self.y} <= {self.c}"


def _linearize(t: IntTerm) -> Tuple[Dict[str, int], int]:
    """Decompose an integer term into variable coefficients and a constant."""
    coeffs: Dict[str, int] = {}
    const = 0
    stack: List[Tuple[IntTerm, int]] = [(t, 1)]
    while stack:
        term, sign = stack.pop()
        if isinstance(term, IntConst):
            const += sign * term.value
        elif isinstance(term, IntVar):
            coeffs[term.name] = coeffs.get(term.name, 0) + sign
        elif isinstance(term, Add):
            stack.append((term.lhs, sign))
            stack.append((term.rhs, sign))
        elif isinstance(term, Sub):
            stack.append((term.lhs, sign))
            stack.append((term.rhs, -sign))
        else:  # pragma: no cover - defensive
            raise ValueError(f"non-linear integer term: {term!r}")
    return {v: k for v, k in coeffs.items() if k != 0}, const


def normalize_atom(atom: BoolTerm) -> Optional[List[DifferenceBound]]:
    """Normalize a comparison atom to difference bounds (conjunction).

    Returns ``None`` when the atom is not a difference-logic comparison
    (e.g. an opaque boolean variable).  ``Eq`` produces two bounds; ``Le``
    and ``Lt`` produce one.  Raises :class:`ValueError` for comparisons
    that fall outside the difference fragment (more than two variables or
    non-unit coefficients), which Canary never generates.
    """
    if isinstance(atom, Not):
        raise ValueError("normalize_atom expects a positive atom")
    if isinstance(atom, Le):
        return [_bound_from(atom.lhs, atom.rhs, slack=0)]
    if isinstance(atom, Lt):
        return [_bound_from(atom.lhs, atom.rhs, slack=-1)]
    if isinstance(atom, Eq):
        return [
            _bound_from(atom.lhs, atom.rhs, slack=0),
            _bound_from(atom.rhs, atom.lhs, slack=0),
        ]
    return None


def _bound_from(lhs: IntTerm, rhs: IntTerm, slack: int) -> DifferenceBound:
    """``lhs <= rhs + slack`` as a difference bound."""
    coeffs, const = _linearize(lhs)
    rcoeffs, rconst = _linearize(rhs)
    for v, k in rcoeffs.items():
        coeffs[v] = coeffs.get(v, 0) - k
    coeffs = {v: k for v, k in coeffs.items() if k != 0}
    c = rconst - const + slack
    pos = [v for v, k in coeffs.items() if k == 1]
    neg = [v for v, k in coeffs.items() if k == -1]
    if any(abs(k) > 1 for k in coeffs.values()) or len(pos) > 1 or len(neg) > 1:
        raise ValueError(f"comparison outside difference logic: {coeffs} <= {c}")
    x = pos[0] if pos else ZERO_NAME
    y = neg[0] if neg else ZERO_NAME
    return DifferenceBound(x, y, c)


def negate_bound(b: DifferenceBound) -> DifferenceBound:
    """``not (x - y <= c)``  is  ``y - x <= -c - 1`` over the integers."""
    return DifferenceBound(b.y, b.x, -b.c - 1)


class IncrementalBoundStore:
    """Push/pop store of difference bounds with *incremental* consistency.

    The non-incremental check (:func:`repro.smt.simplify.quick_unsat`)
    re-runs Bellman-Ford over the whole conjunction for every candidate
    path, which is O(V·E) per query.  This store instead maintains a
    feasible potential function ``dist`` across assertions: adding the
    bound ``x - y <= c`` only triggers label-correcting relaxation from
    ``x`` when the new edge is violated, so the common case (the new
    guard is compatible) costs O(out-edges of the touched region) — the
    per-edge cost the mid-DFS pruner needs.

    Infeasibility is detected the standard incremental way: the store is
    consistent before each assertion, so a negative cycle must pass
    through the new edge, and during relaxation some node then relaxes
    more than |V| times.  Frames snapshot the touched potentials, so
    ``pop`` restores the exact pre-push state in time proportional to
    the work the push did.
    """

    def __init__(self) -> None:
        # adjacency: y -> [(x, c)] for each bound  x - y <= c
        self._edges: Dict[str, List[Tuple[str, int]]] = {}
        self._dist: Dict[str, int] = {}
        #: frames: (edge-sources added, first-touch dist snapshot, new nodes)
        self._frames: List[Tuple[List[str], Dict[str, int], List[str]]] = []
        self._unsat_depth: Optional[int] = None

    @property
    def unsat(self) -> bool:
        return self._unsat_depth is not None

    def push(self) -> None:
        self._frames.append(([], {}, []))

    def _ensure_node(self, name: str) -> None:
        if name not in self._dist:
            self._dist[name] = 0
            self._edges.setdefault(name, [])
            if self._frames:
                self._frames[-1][2].append(name)

    def assert_bound(self, bound: DifferenceBound) -> bool:
        """Add ``x - y <= c``; returns True iff the store is now unsat."""
        if self.unsat:
            return True
        if not self._frames:
            self.push()
        added, touched, _new_nodes = self._frames[-1]
        self._ensure_node(bound.x)
        self._ensure_node(bound.y)
        self._edges[bound.y].append((bound.x, bound.c))
        added.append(bound.y)
        dist = self._dist
        if dist[bound.y] + bound.c >= dist[bound.x]:
            return False
        # The new edge is violated: relax forward from x.  A feasible
        # potential exists for the old system, so any node relaxing more
        # than |V| times lies on a negative cycle through the new edge.
        limit = len(dist)
        counts: Dict[str, int] = {}
        if bound.x not in touched:
            touched[bound.x] = dist[bound.x]
        dist[bound.x] = dist[bound.y] + bound.c
        queue = [bound.x]
        while queue:
            u = queue.pop()
            du = dist[u]
            for v, w in self._edges[u]:
                if du + w < dist[v]:
                    if v not in touched:
                        touched[v] = dist[v]
                    dist[v] = du + w
                    counts[v] = counts.get(v, 0) + 1
                    if counts[v] > limit:
                        self._unsat_depth = len(self._frames) - 1
                        return True
                    queue.append(v)
        return False

    def pop(self) -> None:
        added, touched, new_nodes = self._frames.pop()
        for y in reversed(added):
            self._edges[y].pop()
        for node, old in touched.items():
            self._dist[node] = old
        for node in new_nodes:
            del self._dist[node]
            del self._edges[node]
        if self._unsat_depth is not None and self._unsat_depth >= len(self._frames):
            self._unsat_depth = None


class DifferenceLogicSolver:
    """Incremental conjunction-of-difference-bounds consistency checker.

    Bounds are asserted with an opaque *tag* (for Canary: the SAT literal
    that enabled them); when the constraint graph acquires a negative
    cycle, :meth:`check` returns the tags along one such cycle, which is a
    minimal-ish unsatisfiable core usable directly as a blocking clause.
    """

    def __init__(self) -> None:
        # adjacency: u -> list of (v, weight, tag) meaning  v - u <= weight
        self._edges: Dict[str, List[Tuple[str, int, Hashable]]] = {}
        self._nodes: List[str] = []
        self._trail: List[Tuple[str, str]] = []

    def _node(self, name: str) -> None:
        if name not in self._edges:
            self._edges[name] = []
            self._nodes.append(name)

    def assert_bound(self, bound: DifferenceBound, tag: Hashable) -> None:
        """Assert ``x - y <= c``: graph edge ``y -> x`` with weight ``c``."""
        self._node(bound.x)
        self._node(bound.y)
        self._edges[bound.y].append((bound.x, bound.c, tag))
        self._trail.append((bound.y, bound.x))

    def push(self) -> int:
        return len(self._trail)

    def pop(self, mark: int) -> None:
        while len(self._trail) > mark:
            src, _dst = self._trail.pop()
            self._edges[src].pop()

    def check(self) -> Optional[List[Hashable]]:
        """Return ``None`` if consistent, else the tags of a negative cycle.

        Uses Bellman-Ford with a parent pointer per node; on relaxation
        round ``|V|`` a node still relaxing lies on (or is reachable from)
        a negative cycle, which we extract by walking parents.
        """
        nodes = self._nodes
        if not nodes:
            return None
        dist: Dict[str, int] = {v: 0 for v in nodes}
        parent: Dict[str, Optional[Tuple[str, Hashable]]] = {v: None for v in nodes}
        last_updated = None
        for _ in range(len(nodes)):
            last_updated = None
            for u in nodes:
                du = dist[u]
                for v, w, tag in self._edges[u]:
                    if du + w < dist[v]:
                        dist[v] = du + w
                        parent[v] = (u, tag)
                        last_updated = v
            if last_updated is None:
                return None
        # Walk back |V| steps to land inside the cycle, then collect it.
        node = last_updated
        for _ in range(len(nodes)):
            node = parent[node][0]
        cycle_tags: List[Hashable] = []
        cur = node
        while True:
            prev, tag = parent[cur]
            cycle_tags.append(tag)
            cur = prev
            if cur == node:
                break
        return cycle_tags

    def model(self) -> Dict[str, int]:
        """A satisfying assignment (shortest-path potentials), assuming
        :meth:`check` returned ``None``.  The zero variable maps to 0."""
        nodes = self._nodes
        dist: Dict[str, int] = {v: 0 for v in nodes}
        for _ in range(len(nodes)):
            changed = False
            for u in nodes:
                du = dist[u]
                for v, w, _tag in self._edges[u]:
                    if du + w < dist[v]:
                        dist[v] = du + w
                        changed = True
            if not changed:
                break
        shift = dist.get(ZERO_NAME, 0)
        return {v: d - shift for v, d in dist.items()}
