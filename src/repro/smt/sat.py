"""CDCL SAT solver with assumption-based incremental solving.

A self-contained conflict-driven clause-learning solver with the standard
modern ingredients: two-watched-literal propagation, first-UIP conflict
analysis, VSIDS-style variable activity, phase saving, Luby restarts, and
activity-driven learnt-clause garbage collection.  It is the
propositional engine underneath the lazy DPLL(T) loop in
:mod:`repro.smt.solver`.

The solver is designed to stay *warm* across many related queries:

* :meth:`SatSolver.solve` accepts ``assumptions`` — literals asserted as
  pseudo-decisions for the duration of one call (MiniSat style).  An
  UNSAT answer under assumptions does not poison the instance: the
  responsible subset is reported in :attr:`SatSolver.failed_assumptions`
  and the solver stays usable, with every learnt clause (which mentions
  the negated assumptions explicitly) remaining globally valid.
* :meth:`SatSolver.push` / :meth:`SatSolver.pop` delimit clause scopes:
  ``pop`` detaches the clauses added in the innermost scope, unwinds the
  root-trail to its savepoint, and discards learnt clauses derived while
  the scope was active.
* Learnt clauses carry activities; when the learnt database outgrows its
  budget, :meth:`_reduce_db` drops the cold half (never binary clauses or
  clauses locked as propagation reasons).

Clauses may be added between :meth:`SatSolver.solve` calls (the DPLL(T)
loop adds theory blocking clauses this way); the solver always returns to
decision level zero before yielding control, on *every* exit path —
including the conflict-budget and deadline UNKNOWN exits — so a warm
instance can always be re-solved.

Root-level simplification is scope-aware: ``add_clause`` may drop a
literal falsified by a root assignment (or skip a clause satisfied by
one) only when that assignment's scope is no deeper than the clause's
target scope — i.e. when the simplification is valid for the clause's
whole lifetime.  Otherwise the simplified form is attached at the
*dependency's* scope and the original literals are queued for re-addition
when that scope pops, so popping an assumption-scope never leaves an
over-simplified clause behind.

Literals follow the DIMACS convention: variable ``v`` is the positive
integer ``v`` and its negation is ``-v``.

Search is resource-bounded two ways: a **conflict budget**
(``max_conflicts``) and a **wall-clock deadline** (``deadline``, a
``time.monotonic`` instant polled cheaply during search).  Exhausting
either returns :data:`UNKNOWN` — never conflated with :data:`UNSAT` —
with the cause recorded in :attr:`SatSolver.unknown_reason`
(``'conflicts'`` or ``'deadline'``).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["SatSolver", "SAT", "UNSAT", "UNKNOWN"]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence.

    Uses the finite-state reformulation of Een & Sorensson: find the
    subsequence block containing position ``i`` and reduce into it until
    the position sits at a block boundary ``2^k - 1``.
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class _Clause:
    __slots__ = ("lits", "learnt", "activity", "removed", "scope")

    def __init__(self, lits: List[int], learnt: bool = False, scope: int = 0) -> None:
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0
        self.removed = False
        #: scope depth the clause belongs to (learnt clauses: the depth
        #: active when they were derived — they may resolve against scoped
        #: clauses, so they are discarded when that scope pops)
        self.scope = scope


class _Scope:
    """One clause scope: savepoints to unwind on :meth:`SatSolver.pop`."""

    __slots__ = ("trail_len", "clauses", "respawn")

    def __init__(self, trail_len: int) -> None:
        self.trail_len = trail_len
        #: clauses attached while this scope was innermost (detached on pop)
        self.clauses: List[_Clause] = []
        #: (target_scope, original_lits) to re-add after this scope pops —
        #: clauses whose root simplification depended on this scope
        self.respawn: List[Tuple[int, List[int]]] = []


class SatSolver:
    """CDCL solver over clauses added with :meth:`add_clause`."""

    def __init__(self) -> None:
        self._num_vars = 0
        # watch lists indexed by literal: +v -> 2*(v-1), -v -> 2*(v-1)+1
        self._watches: List[List[_Clause]] = []
        self._assign: List[int] = []  # var-1 -> 0 unassigned, +1 true, -1 false
        self._level: List[int] = []
        self._reason: List[Optional[_Clause]] = []
        #: scope depth active when the var was root-assigned (level 0 only)
        self._assign_scope: List[int] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._prop_head = 0
        self._activity: List[float] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        # indexed max-heap over variable activity (MiniSat's order_heap):
        # _heap holds var numbers, _heap_pos maps var-1 -> heap index (-1 =
        # not enqueued).  Decisions pop the root in O(log n) instead of
        # scanning every variable — the difference between one-shot and
        # warm instances whose variable population keeps growing.  The
        # heap is rebuilt at every solve() from the decision-variable set
        # of that call (see ``decision_vars``); between calls it is
        # meaningless and variable activity is the source of truth.
        self._heap: List[int] = []
        self._heap_pos: List[int] = []
        # decision restriction for the current solve(): when
        # _dec_restricted, only vars stamped with the current _dec_stamp
        # in _dec_mark may enter the heap (propagation may still assign
        # any var)
        self._dec_mark: List[int] = []
        self._dec_stamp = 0
        self._dec_restricted = False
        self._phase: List[bool] = []
        self._seen: List[bool] = []  # reusable conflict-analysis buffer
        self._seen_clear: List[int] = []
        self._scopes: List[_Scope] = []
        #: scope depth at which the instance became UNSAT (None = consistent;
        #: 0 = globally UNSAT; d>0 = UNSAT until scope d pops)
        self._unsat_scope: Optional[int] = None
        self._learnts: List[_Clause] = []
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._max_learnts = 0  # 0 = derive from clause count on first solve
        self._num_clauses = 0  # attached problem (non-learnt) clauses
        self.model: Dict[int, bool] = {}
        self.conflicts = 0
        self.propagations = 0
        self.restarts = 0
        self.learned = 0
        self.db_reductions = 0
        #: why the last solve() returned UNKNOWN ('conflicts'|'deadline')
        self.unknown_reason: Optional[str] = None
        #: after an UNSAT under assumptions: the responsible subset of the
        #: assumption literals (None when the last solve had none to blame)
        self.failed_assumptions: Optional[List[int]] = None

    @property
    def _ok(self) -> bool:
        return self._unsat_scope is None

    @property
    def ok(self) -> bool:
        """False iff the clause set is UNSAT at the current scope depth."""
        return self._unsat_scope is None

    @property
    def scope_depth(self) -> int:
        return len(self._scopes)

    # ----- variable / clause management -------------------------------

    def ensure_var(self, v: int) -> None:
        while self._num_vars < v:
            self._num_vars += 1
            self._assign.append(0)
            self._level.append(-1)
            self._reason.append(None)
            self._assign_scope.append(0)
            self._activity.append(0.0)
            self._phase.append(False)
            self._seen.append(False)
            self._watches.append([])
            self._watches.append([])
            self._heap_pos.append(-1)
            self._dec_mark.append(0)

    # ----- activity heap ----------------------------------------------

    def _heap_sift_up(self, i: int) -> None:
        heap, pos, act = self._heap, self._heap_pos, self._activity
        v = heap[i]
        a = act[v - 1]
        while i > 0:
            parent = (i - 1) >> 1
            pv = heap[parent]
            if act[pv - 1] >= a:
                break
            heap[i] = pv
            pos[pv - 1] = i
            i = parent
        heap[i] = v
        pos[v - 1] = i

    def _heap_sift_down(self, i: int) -> None:
        heap, pos, act = self._heap, self._heap_pos, self._activity
        n = len(heap)
        v = heap[i]
        a = act[v - 1]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and act[heap[right] - 1] > act[heap[child] - 1]:
                child = right
            cv = heap[child]
            if a >= act[cv - 1]:
                break
            heap[i] = cv
            pos[cv - 1] = i
            i = child
        heap[i] = v
        pos[v - 1] = i

    def _heap_insert(self, v: int) -> None:
        if self._heap_pos[v - 1] >= 0:
            return
        if self._dec_restricted and self._dec_mark[v - 1] != self._dec_stamp:
            return  # not a decision var of the current solve
        self._heap_pos[v - 1] = len(self._heap)
        self._heap.append(v)
        self._heap_sift_up(len(self._heap) - 1)

    def _rebuild_heap(self, decision_vars: Optional[Iterable[int]]) -> None:
        """Reset the decision heap for one solve() call.

        ``decision_vars`` restricts branching to the given variables
        (the active query's atom/gate/activation cluster on a warm
        instance); ``None`` allows every variable.  Restriction is sound
        for the DPLL(T) caller: clauses over inactive Tseitin clusters
        are always extendable (gates are functionally determined by
        their inputs, activation literals can be set false), learnt
        clauses are resolvents of extendable clauses, and theory lemmas
        are theory-valid — none of them can exclude a theory-consistent
        assignment of the active atoms.  UNSAT answers are conflict
        derivations and stay sound regardless of the restriction.
        """
        heap, pos = self._heap, self._heap_pos
        for v in heap:
            pos[v - 1] = -1
        assign = self._assign
        if decision_vars is None:
            self._dec_restricted = False
            heap[:] = [v for v in range(1, self._num_vars + 1) if assign[v - 1] == 0]
        else:
            self._dec_restricted = True
            self._dec_stamp += 1
            stamp, mark = self._dec_stamp, self._dec_mark
            fresh = []
            for v in decision_vars:
                self.ensure_var(v)
                if mark[v - 1] != stamp:
                    mark[v - 1] = stamp
                    if assign[v - 1] == 0:
                        fresh.append(v)
            heap[:] = fresh
        # descending activity order is a valid max-heap
        act = self._activity
        heap.sort(key=lambda v: -act[v - 1])
        for i, v in enumerate(heap):
            pos[v - 1] = i

    # ----- scope management -------------------------------------------

    def push(self) -> None:
        """Open a clause scope.  Must be called at decision level zero."""
        assert not self._trail_lim, "push() requires decision level 0"
        self._scopes.append(_Scope(len(self._trail)))

    def pop(self) -> None:
        """Close the innermost scope: detach its clauses, unwind its root
        assignments, drop scope-tainted learnt clauses, and re-add any
        clause whose root simplification depended on this scope."""
        assert not self._trail_lim, "pop() requires decision level 0"
        scope = self._scopes.pop()
        depth = len(self._scopes)
        for clause in scope.clauses:
            clause.removed = True
        # Learnt clauses derived while the scope was active may resolve
        # against its clauses; drop them (watch lists are cleaned lazily).
        kept: List[_Clause] = []
        for clause in self._learnts:
            if clause.scope > depth:
                clause.removed = True
            else:
                kept.append(clause)
        self._learnts = kept
        for lit in reversed(self._trail[scope.trail_len :]):
            idx = abs(lit) - 1
            self._assign[idx] = 0
            self._reason[idx] = None
            self._heap_insert(idx + 1)
        del self._trail[scope.trail_len :]
        self._prop_head = min(self._prop_head, len(self._trail))
        if self._unsat_scope is not None and self._unsat_scope > len(self._scopes):
            self._unsat_scope = None
        for target, lits in scope.respawn:
            self.add_clause(lits, scope=target)

    def add_clause(self, lits: Iterable[int], scope: Optional[int] = None) -> bool:
        """Add a clause; returns False if the instance is now (or already)
        UNSAT at the current scope depth.

        Must be called at decision level zero (which holds whenever the
        solver is not inside :meth:`solve`).  ``scope`` pins the clause to
        an outer scope (0 = permanent) even while deeper scopes are
        active; by default the clause joins the innermost scope.  Root
        simplification against assignments from scopes deeper than
        ``scope`` is recorded as a respawn dependency so the original
        clause is restored when the deeper scope pops.
        """
        assert not self._trail_lim, "clauses must be added at level 0"
        depth = len(self._scopes)
        if scope is None:
            scope = depth
        elif not 0 <= scope <= depth:
            raise ValueError(f"scope {scope} not in [0, {depth}]")
        original = list(lits)
        if self._unsat_scope is not None:
            if self._unsat_scope > scope:
                # Currently UNSAT because of a deeper scope: remember the
                # clause so it takes effect once that scope pops.
                self._scopes[self._unsat_scope - 1].respawn.append((scope, original))
            return False
        seen = set()
        out: List[int] = []
        dep = 0  # deepest scope whose root assignment simplified the clause
        for lit in original:
            self.ensure_var(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self._value(lit)
            if val == 1:
                s = self._assign_scope[abs(lit) - 1]
                if s <= scope:
                    return True  # satisfied for the clause's whole lifetime
                # Satisfied only while scope s lives: skip it for now but
                # re-add the original when s pops.
                self._scopes[s - 1].respawn.append((scope, original))
                return True
            if val == -1:
                s = self._assign_scope[abs(lit) - 1]
                if s > scope and s > dep:
                    dep = s
                continue  # falsified at root: drop literal
            seen.add(lit)
            out.append(lit)
        attach = scope if dep <= scope else dep
        if not out:
            if dep > scope:
                self._scopes[dep - 1].respawn.append((scope, original))
            self._unsat_scope = attach
            return False
        if len(out) == 1:
            # The unit fact lives on the trail; trail truncation removes it
            # when the *current* innermost scope pops (regardless of which
            # scope simplified it away), so respawn from there.  Re-adding
            # recomputes any remaining dependency against the new state.
            if depth > scope:
                self._scopes[depth - 1].respawn.append((scope, original))
            if not self._enqueue(out[0], None) or self._propagate() is not None:
                self._unsat_scope = depth
                return False
            return True
        if dep > scope:
            self._scopes[dep - 1].respawn.append((scope, original))
        clause = _Clause(out, scope=attach)
        self._attach(clause)
        self._num_clauses += 1
        if attach > 0:
            self._scopes[attach - 1].clauses.append(clause)
        return True

    def _attach(self, clause: _Clause) -> None:
        lits = clause.lits
        lit = lits[0]
        self._watches[(abs(lit) - 1) * 2 + (lit > 0)].append(clause)
        lit = lits[1]
        self._watches[(abs(lit) - 1) * 2 + (lit > 0)].append(clause)

    # ----- assignment primitives --------------------------------------

    def _value(self, lit: int) -> int:
        v = self._assign[abs(lit) - 1]
        return v if lit > 0 else -v

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        val = self._value(lit)
        if val == 1:
            return True
        if val == -1:
            return False
        idx = abs(lit) - 1
        self._assign[idx] = 1 if lit > 0 else -1
        level = len(self._trail_lim)
        self._level[idx] = level
        self._reason[idx] = reason
        if level == 0:
            self._assign_scope[idx] = len(self._scopes)
        self._phase[idx] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""
        watches = self._watches
        trail = self._trail
        while self._prop_head < len(trail):
            lit = trail[self._prop_head]
            self._prop_head += 1
            self.propagations += 1
            # watchers of -lit live at the index of literal -lit
            watchers = watches[(abs(lit) - 1) * 2 + (lit < 0)]
            i = 0
            while i < len(watchers):
                clause = watchers[i]
                if clause.removed:
                    watchers[i] = watchers[-1]
                    watchers.pop()
                    continue
                lits = clause.lits
                if lits[0] == -lit:
                    lits[0], lits[1] = lits[1], lits[0]
                if self._value(lits[0]) == 1:
                    i += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != -1:
                        lits[1], lits[k] = lits[k], lits[1]
                        w = lits[1]
                        watches[(abs(w) - 1) * 2 + (w > 0)].append(clause)
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        moved = True
                        break
                if moved:
                    continue
                if not self._enqueue(lits[0], clause):
                    self._prop_head = len(trail)
                    return clause
                i += 1
        return None

    # ----- conflict analysis -------------------------------------------

    def _bump_var(self, v: int) -> None:
        act = self._activity
        act[v - 1] += self._var_inc
        if act[v - 1] > 1e100:
            # in-place rescale; relative order is unchanged so the heap
            # needs no rebuild
            for i in range(len(act)):
                act[i] *= 1e-100
            self._var_inc *= 1e-100
        if self._heap_pos[v - 1] >= 0:
            self._heap_sift_up(self._heap_pos[v - 1])

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learnts:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int]:
        """First-UIP conflict analysis: (learnt clause, backtrack level)."""
        level = self._decision_level()
        seen = self._seen
        to_clear = self._seen_clear
        learnt: List[int] = []
        counter = 0
        p: Optional[int] = None
        reason_lits = conflict.lits
        self._bump_clause(conflict)
        idx = len(self._trail) - 1
        while True:
            for q in reason_lits:
                if p is not None and q == p:
                    continue
                vq = abs(q) - 1
                if not seen[vq] and self._level[vq] > 0:
                    seen[vq] = True
                    to_clear.append(vq)
                    self._bump_var(abs(q))
                    if self._level[vq] >= level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self._trail[idx]) - 1]:
                idx -= 1
            p = self._trail[idx]
            idx -= 1
            seen[abs(p) - 1] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[abs(p) - 1]
            if reason.learnt:
                self._bump_clause(reason)
            reason_lits = reason.lits
        for v in to_clear:
            seen[v] = False
        del to_clear[:]
        learnt.insert(0, -p)
        if len(learnt) == 1:
            return learnt, 0
        max_i = max(range(1, len(learnt)), key=lambda i: self._level[abs(learnt[i]) - 1])
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self._level[abs(learnt[1]) - 1]

    def _analyze_final(self, p: int) -> List[int]:
        """The subset of the current assumptions that together with the
        clause set forces ``p`` (a failed assumption) to be false."""
        out = [p]
        if self._decision_level() == 0:
            return out
        seen = self._seen
        to_clear = [abs(p) - 1]
        seen[abs(p) - 1] = True
        bottom = self._trail_lim[0]
        for i in range(len(self._trail) - 1, bottom - 1, -1):
            lit = self._trail[i]
            idx = abs(lit) - 1
            if not seen[idx]:
                continue
            reason = self._reason[idx]
            if reason is None:
                # An assumption pseudo-decision contributing to the conflict
                # (for directly contradictory assumptions this is ``-p``).
                out.append(lit)
            else:
                for q in reason.lits:
                    qi = abs(q) - 1
                    if not seen[qi] and self._level[qi] > 0:
                        seen[qi] = True
                        to_clear.append(qi)
        for v in to_clear:
            seen[v] = False
        return out

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            idx = abs(lit) - 1
            self._assign[idx] = 0
            self._reason[idx] = None
            self._heap_insert(idx + 1)
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._prop_head = min(self._prop_head, len(self._trail))

    # ----- learnt-clause database --------------------------------------

    def _reduce_db(self) -> int:
        """Drop the cold half of the learnt database (activity order),
        sparing binary clauses and clauses locked as propagation reasons.
        Removal is lazy: watch lists evict flagged clauses on traversal."""
        self.db_reductions += 1
        locked = set()
        for lit in self._trail:
            reason = self._reason[abs(lit) - 1]
            if reason is not None:
                locked.add(id(reason))
        learnts = sorted(self._learnts, key=lambda c: c.activity)
        limit = len(learnts) // 2
        kept: List[_Clause] = []
        removed = 0
        for i, clause in enumerate(learnts):
            if i < limit and len(clause.lits) > 2 and id(clause) not in locked:
                clause.removed = True
                removed += 1
            else:
                kept.append(clause)
        self._learnts = kept
        return removed

    # ----- search -------------------------------------------------------

    def _pick_branch_var(self) -> int:
        # Pop the most active unassigned variable.  Assigned variables
        # linger in the heap (removal is lazy) and are skipped here; every
        # unassigned variable is guaranteed to be present because
        # unassignment re-inserts it.
        heap, pos, assign = self._heap, self._heap_pos, self._assign
        while heap:
            v = heap[0]
            pos[v - 1] = -1
            last = heap.pop()
            if heap:
                heap[0] = last
                pos[last - 1] = 0
                self._heap_sift_down(0)
            if assign[v - 1] == 0:
                return v
        return 0

    def solve(
        self,
        max_conflicts: Optional[int] = None,
        deadline: Optional[float] = None,
        assumptions: Optional[Iterable[int]] = None,
        model_vars: Optional[Iterable[int]] = None,
        decision_vars: Optional[Iterable[int]] = None,
    ) -> str:
        """Run CDCL search to completion, the conflict budget, or the
        ``deadline`` (a ``time.monotonic`` instant), whichever is first.

        ``assumptions`` are asserted as pseudo-decisions for this call
        only (MiniSat style).  When they make the instance UNSAT the
        responsible subset lands in :attr:`failed_assumptions`, the
        solver stays consistent (:attr:`ok` remains True), and every
        learnt clause remains globally valid.  All exit paths return at
        decision level zero.

        ``model_vars`` restricts :attr:`model` extraction on SAT to the
        given variables — on a warm instance the full variable population
        spans every query ever shipped, and callers usually only care
        about the current query's atoms.

        ``decision_vars`` restricts *branching* to the given variables
        (propagation still assigns anything it can).  This is what keeps
        a warm instance's per-query cost proportional to the query
        instead of the accumulated database: inactive clusters are never
        branched into.  See :meth:`_rebuild_heap` for the soundness
        argument; plain propositional callers should leave it ``None``
        (with a partial decision set, SAT means "no conflict on the
        restricted search" — the DPLL(T) layer's theory check is what
        makes that a real verdict).
        """
        self.unknown_reason = None
        self.failed_assumptions = None
        if self._unsat_scope is not None:
            return UNSAT
        if deadline is not None and time.monotonic() >= deadline:
            self.unknown_reason = "deadline"
            return UNKNOWN
        assume: List[int] = list(assumptions) if assumptions else []
        for lit in assume:
            self.ensure_var(abs(lit))
        self._rebuild_heap(decision_vars)
        n_assume = len(assume)
        depth = len(self._scopes)
        if self._max_learnts == 0:
            self._max_learnts = max(256, 2 * self._num_clauses)
        conflicts_here = 0
        restart_idx = 1
        restart_budget = 32 * _luby(restart_idx)
        # Poll the clock every few decisions (a syscall per decision would
        # dominate on small instances); conflicts poll unconditionally.
        ticks = 0
        while True:
            if deadline is not None:
                ticks += 1
                if ticks >= 16:
                    ticks = 0
                    if time.monotonic() >= deadline:
                        self._backtrack(0)
                        self.unknown_reason = "deadline"
                        return UNKNOWN
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if self._decision_level() == 0:
                    self._unsat_scope = len(self._scopes)
                    return UNSAT
                learnt, bt = self._analyze(conflict)
                self._backtrack(bt)
                self.learned += 1
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._unsat_scope = len(self._scopes)
                        self._backtrack(0)
                        return UNSAT
                else:
                    clause = _Clause(learnt, learnt=True, scope=depth)
                    self._attach(clause)
                    self._learnts.append(clause)
                    self._enqueue(learnt[0], clause)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if max_conflicts is not None and conflicts_here >= max_conflicts:
                    self._backtrack(0)
                    self.unknown_reason = "conflicts"
                    return UNKNOWN
                if deadline is not None and time.monotonic() >= deadline:
                    self._backtrack(0)
                    self.unknown_reason = "deadline"
                    return UNKNOWN
                if conflicts_here >= restart_budget:
                    restart_idx += 1
                    restart_budget = conflicts_here + 32 * _luby(restart_idx)
                    self.restarts += 1
                    self._backtrack(0)
                if len(self._learnts) > self._max_learnts:
                    # Reasons are locked, so reduction is safe mid-search.
                    self._reduce_db()
                    self._max_learnts += self._max_learnts // 2
                continue
            # Re-establish pending assumptions as pseudo-decisions, one
            # level per assumption (dummy levels keep indices aligned).
            next_lit = 0
            while self._decision_level() < n_assume:
                p = assume[self._decision_level()]
                val = self._value(p)
                if val == 1:
                    self._trail_lim.append(len(self._trail))
                    continue
                if val == -1:
                    self.failed_assumptions = self._analyze_final(p)
                    self._backtrack(0)
                    return UNSAT
                next_lit = p
                break
            if next_lit == 0:
                var = self._pick_branch_var()
                if var == 0:
                    if model_vars is None:
                        self.model = {
                            v: self._assign[v - 1] == 1
                            for v in range(1, self._num_vars + 1)
                        }
                    else:
                        self.model = {
                            v: self._assign[v - 1] == 1
                            for v in model_vars
                            if 0 < v <= self._num_vars
                        }
                    self._backtrack(0)
                    return SAT
                next_lit = var if self._phase[var - 1] else -var
            self._trail_lim.append(len(self._trail))
            self._enqueue(next_lit, None)
