"""CDCL SAT solver.

A self-contained conflict-driven clause-learning solver with the standard
modern ingredients: two-watched-literal propagation, first-UIP conflict
analysis, VSIDS-style variable activity, phase saving, and Luby restarts.
It is the propositional engine underneath the lazy DPLL(T) loop in
:mod:`repro.smt.solver`.

Clauses may be added between :meth:`SatSolver.solve` calls (the DPLL(T)
loop adds theory blocking clauses this way); the solver always returns to
decision level zero before yielding control.

Literals follow the DIMACS convention: variable ``v`` is the positive
integer ``v`` and its negation is ``-v``.

Search is resource-bounded two ways: a **conflict budget**
(``max_conflicts``) and a **wall-clock deadline** (``deadline``, a
``time.monotonic`` instant polled cheaply during search).  Exhausting
either returns :data:`UNKNOWN` — never conflated with :data:`UNSAT` —
with the cause recorded in :attr:`SatSolver.unknown_reason`
(``'conflicts'`` or ``'deadline'``).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

__all__ = ["SatSolver", "SAT", "UNSAT", "UNKNOWN"]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    k = 1
    while (1 << (k + 1)) - 1 <= i:
        k += 1
    while True:
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1
        k = 1
        while (1 << (k + 1)) - 1 <= i:
            k += 1


class _Clause:
    __slots__ = ("lits", "learnt")

    def __init__(self, lits: List[int], learnt: bool = False) -> None:
        self.lits = lits
        self.learnt = learnt


class SatSolver:
    """CDCL solver over clauses added with :meth:`add_clause`."""

    def __init__(self) -> None:
        self._num_vars = 0
        self._watches: Dict[int, List[_Clause]] = {}
        self._assign: List[int] = []  # var-1 -> 0 unassigned, +1 true, -1 false
        self._level: List[int] = []
        self._reason: List[Optional[_Clause]] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._prop_head = 0
        self._activity: List[float] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._phase: List[bool] = []
        self._ok = True
        self.model: Dict[int, bool] = {}
        self.conflicts = 0
        #: why the last solve() returned UNKNOWN ('conflicts'|'deadline')
        self.unknown_reason: Optional[str] = None

    # ----- variable / clause management -------------------------------

    def ensure_var(self, v: int) -> None:
        while self._num_vars < v:
            self._num_vars += 1
            self._assign.append(0)
            self._level.append(-1)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            self._watches[self._num_vars] = []
            self._watches[-self._num_vars] = []

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the instance became trivially UNSAT.

        Must be called at decision level zero (which holds whenever the
        solver is not inside :meth:`solve`).
        """
        if not self._ok:
            return False
        assert not self._trail_lim, "clauses must be added at level 0"
        seen = set()
        out: List[int] = []
        for lit in lits:
            self.ensure_var(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self._value(lit)
            if val == 1:
                return True  # already satisfied at root
            if val == -1:
                continue  # falsified at root: drop literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None) or self._propagate() is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(out)
        self._attach(clause)
        return True

    def _attach(self, clause: _Clause) -> None:
        self._watches[-clause.lits[0]].append(clause)
        self._watches[-clause.lits[1]].append(clause)

    # ----- assignment primitives --------------------------------------

    def _value(self, lit: int) -> int:
        v = self._assign[abs(lit) - 1]
        return v if lit > 0 else -v

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        val = self._value(lit)
        if val == 1:
            return True
        if val == -1:
            return False
        idx = abs(lit) - 1
        self._assign[idx] = 1 if lit > 0 else -1
        self._level[idx] = self._decision_level()
        self._reason[idx] = reason
        self._phase[idx] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._prop_head < len(self._trail):
            lit = self._trail[self._prop_head]
            self._prop_head += 1
            watchers = self._watches[lit]
            i = 0
            while i < len(watchers):
                clause = watchers[i]
                lits = clause.lits
                if lits[0] == -lit:
                    lits[0], lits[1] = lits[1], lits[0]
                if self._value(lits[0]) == 1:
                    i += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != -1:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[-lits[1]].append(clause)
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        moved = True
                        break
                if moved:
                    continue
                if not self._enqueue(lits[0], clause):
                    self._prop_head = len(self._trail)
                    return clause
                i += 1
        return None

    # ----- conflict analysis -------------------------------------------

    def _bump_var(self, v: int) -> None:
        self._activity[v - 1] += self._var_inc
        if self._activity[v - 1] > 1e100:
            self._activity = [a * 1e-100 for a in self._activity]
            self._var_inc *= 1e-100

    def _analyze(self, conflict: _Clause) -> tuple[List[int], int]:
        """First-UIP conflict analysis: (learnt clause, backtrack level)."""
        level = self._decision_level()
        seen = [False] * self._num_vars
        learnt: List[int] = []
        counter = 0
        p: Optional[int] = None
        reason_lits = conflict.lits
        idx = len(self._trail) - 1
        while True:
            for q in reason_lits:
                if p is not None and q == p:
                    continue
                vq = abs(q) - 1
                if not seen[vq] and self._level[vq] > 0:
                    seen[vq] = True
                    self._bump_var(abs(q))
                    if self._level[vq] >= level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self._trail[idx]) - 1]:
                idx -= 1
            p = self._trail[idx]
            idx -= 1
            seen[abs(p) - 1] = False
            counter -= 1
            if counter == 0:
                break
            reason_lits = self._reason[abs(p) - 1].lits
        learnt.insert(0, -p)
        if len(learnt) == 1:
            return learnt, 0
        max_i = max(range(1, len(learnt)), key=lambda i: self._level[abs(learnt[i]) - 1])
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self._level[abs(learnt[1]) - 1]

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            idx = abs(lit) - 1
            self._assign[idx] = 0
            self._reason[idx] = None
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._prop_head = min(self._prop_head, len(self._trail))

    # ----- search -------------------------------------------------------

    def _pick_branch_var(self) -> int:
        best, best_act = 0, -1.0
        for v in range(1, self._num_vars + 1):
            if self._assign[v - 1] == 0 and self._activity[v - 1] > best_act:
                best, best_act = v, self._activity[v - 1]
        return best

    def solve(
        self,
        max_conflicts: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> str:
        """Run CDCL search to completion, the conflict budget, or the
        ``deadline`` (a ``time.monotonic`` instant), whichever is first."""
        self.unknown_reason = None
        if not self._ok:
            return UNSAT
        if deadline is not None and time.monotonic() >= deadline:
            self.unknown_reason = "deadline"
            return UNKNOWN
        conflicts_here = 0
        restart_idx = 1
        restart_budget = 32 * _luby(restart_idx)
        # Poll the clock every few decisions (a syscall per decision would
        # dominate on small instances); conflicts poll unconditionally.
        ticks = 0
        while True:
            if deadline is not None:
                ticks += 1
                if ticks >= 16:
                    ticks = 0
                    if time.monotonic() >= deadline:
                        self._backtrack(0)
                        self.unknown_reason = "deadline"
                        return UNKNOWN
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return UNSAT
                learnt, bt = self._analyze(conflict)
                self._backtrack(bt)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._ok = False
                        return UNSAT
                else:
                    clause = _Clause(learnt, learnt=True)
                    self._attach(clause)
                    self._enqueue(learnt[0], clause)
                self._var_inc /= self._var_decay
                if max_conflicts is not None and conflicts_here >= max_conflicts:
                    self._backtrack(0)
                    self.unknown_reason = "conflicts"
                    return UNKNOWN
                if deadline is not None and time.monotonic() >= deadline:
                    self._backtrack(0)
                    self.unknown_reason = "deadline"
                    return UNKNOWN
                if conflicts_here >= restart_budget:
                    restart_idx += 1
                    restart_budget = conflicts_here + 32 * _luby(restart_idx)
                    self._backtrack(0)
                continue
            var = self._pick_branch_var()
            if var == 0:
                self.model = {
                    v: self._assign[v - 1] == 1 for v in range(1, self._num_vars + 1)
                }
                self._backtrack(0)
                return SAT
            self._trail_lim.append(len(self._trail))
            lit = var if self._phase[var - 1] else -var
            self._enqueue(lit, None)
