"""Lightweight semi-decision procedures (paper §5.2, first optimization).

Canary filters guard conjunctions with cheap syntactic checks *before*
invoking the full SMT solver, "to filter out conditions having any
apparent contradictions" — this keeps the expensive solver off the
obviously-infeasible edges during VFG construction.  The procedures here
are sound but incomplete: :func:`quick_unsat` returning ``True`` means
definitely unsatisfiable; ``False`` means "don't know".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .terms import And, BoolTerm, FALSE, Le, Lt, Eq, Not, TRUE, conjuncts
from .theory import (
    DifferenceBound,
    IncrementalBoundStore,
    ZERO_NAME,
    negate_bound,
    normalize_atom,
)

__all__ = ["GuardPrefix", "quick_unsat", "simplify_conjunction"]


def _literal_bounds(lit: BoolTerm) -> Optional[List[DifferenceBound]]:
    """Difference bounds entailed by one literal, or None if non-arithmetic."""
    negated = isinstance(lit, Not)
    atom = lit.arg if negated else lit
    if not isinstance(atom, (Le, Lt, Eq)):
        return None
    try:
        bounds = normalize_atom(atom)
    except ValueError:
        return None
    if bounds is None:
        return None
    if not negated:
        return bounds
    if isinstance(atom, Eq):
        return None  # not(a == b) is a disjunction: out of scope for the quick check
    return [negate_bound(bounds[0])]


def quick_unsat(term: BoolTerm) -> bool:
    """Cheap sufficient test for unsatisfiability of a guard.

    Detects (1) complementary boolean literals in the top-level
    conjunction (the ``theta and not theta`` pattern of the paper's
    Fig. 2) and (2) negative cycles among the conjunction's difference
    bounds (contradictory order constraints, paper Ex. 5.1).
    """
    if term is FALSE:
        return True
    if term is TRUE:
        return False
    lits = list(conjuncts(term))
    lit_set = set(lits)
    arith: List[DifferenceBound] = []
    for lit in lits:
        if isinstance(lit, Not) and lit.arg in lit_set:
            return True
        bounds = _literal_bounds(lit)
        if bounds is not None:
            arith.extend(bounds)
    if arith:
        return _has_negative_cycle(arith)
    return False


def _has_negative_cycle(bounds: List[DifferenceBound]) -> bool:
    nodes = {ZERO_NAME}
    for b in bounds:
        nodes.add(b.x)
        nodes.add(b.y)
    dist: Dict[str, int] = {v: 0 for v in nodes}
    edges: List[Tuple[str, str, int]] = [(b.y, b.x, b.c) for b in bounds]
    for _ in range(len(nodes)):
        changed = False
        for u, v, w in edges:
            if dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
                changed = True
        if not changed:
            return False
    return True


class GuardPrefix:
    """Incremental :func:`quick_unsat` over a growing guard conjunction.

    The path searcher folds one edge guard at a time into this store as
    the DFS descends, and pops it on backtrack.  :meth:`push` returns
    whether the running prefix is now *definitely* unsatisfiable — in
    which case the whole subtree below the edge can be cut, because
    every completed path's Φ_all conjoins a superset of the prefix.

    Soundness mirrors :func:`quick_unsat`: the boolean check finds
    complementary literals among the accumulated top-level conjuncts,
    the arithmetic check finds negative cycles among their difference
    bounds — both sufficient conditions, both checked incrementally
    (set membership / :class:`IncrementalBoundStore` relaxation) instead
    of re-scanning the whole conjunction per candidate path.

    The prefix never *constructs* terms (complements are detected via an
    atom set, not by building ``Not`` nodes), so it is safe to run on
    enumeration worker threads while formula assembly stays on the
    coordinator thread.
    """

    def __init__(self) -> None:
        self._store = IncrementalBoundStore()
        self._lits: Set[BoolTerm] = set()
        self._neg_args: Set[BoolTerm] = set()  # atoms appearing under Not
        self._order: List[BoolTerm] = []  # unique literals, push order
        self._frames: List[int] = []  # per-push: count of literals added
        self._unsat_depth: Optional[int] = None
        #: memoized fingerprint() tuple; None = stale.  The dead-state
        #: memo asks for the fingerprint at every DFS node, while pushes
        #: that add literals are comparatively rare (guards repeat along
        #: sibling paths), so caching turns the common case into O(1).
        self._fp: Optional[Tuple[BoolTerm, ...]] = None

    @property
    def unsat(self) -> bool:
        return self._unsat_depth is not None

    def __len__(self) -> int:
        return len(self._order)

    def push(self, guard: BoolTerm) -> bool:
        """Fold one guard into the prefix; True = prefix now unsat."""
        self._frames.append(0)
        self._store.push()
        if self.unsat:
            return True
        if guard is TRUE:
            return False
        for lit in conjuncts(guard):
            if lit is TRUE:
                continue
            if lit is FALSE:
                self._mark_unsat()
                return True
            if lit in self._lits:
                continue
            if isinstance(lit, Not):
                if lit.arg in self._lits:
                    self._mark_unsat()
                    return True
            elif lit in self._neg_args:
                self._mark_unsat()
                return True
            self._lits.add(lit)
            if isinstance(lit, Not):
                self._neg_args.add(lit.arg)
            self._order.append(lit)
            self._fp = None
            self._frames[-1] += 1
            bounds = _literal_bounds(lit)
            if bounds is not None:
                for bound in bounds:
                    if self._store.assert_bound(bound):
                        self._mark_unsat()
                        return True
        return False

    def _mark_unsat(self) -> None:
        self._unsat_depth = len(self._frames) - 1

    def pop(self) -> None:
        added = self._frames.pop()
        if added:
            self._fp = None
        for _ in range(added):
            lit = self._order.pop()
            self._lits.discard(lit)
            if isinstance(lit, Not):
                self._neg_args.discard(lit.arg)
        self._store.pop()
        if self._unsat_depth is not None and self._unsat_depth >= len(self._frames):
            self._unsat_depth = None

    def fingerprint(self) -> Tuple[BoolTerm, ...]:
        """The accumulated literal set as a hashable key.

        Terms are interned, so the tuple is cheap to hash; it is
        insertion-ordered, which under-approximates set equality (two
        orderings of the same set get distinct keys) — fine for the
        dead-state memo, which only loses a hit, never soundness.
        """
        if self._fp is None:
            self._fp = tuple(self._order)
        return self._fp


def simplify_conjunction(term: BoolTerm) -> BoolTerm:
    """Normalize a guard conjunction; returns FALSE if quickly refutable.

    The smart constructors in :mod:`repro.smt.terms` already flatten,
    deduplicate, and cancel complementary literals, so this adds only the
    arithmetic quick check on top.
    """
    if quick_unsat(term):
        return FALSE
    return term
