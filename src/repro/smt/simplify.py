"""Lightweight semi-decision procedures (paper §5.2, first optimization).

Canary filters guard conjunctions with cheap syntactic checks *before*
invoking the full SMT solver, "to filter out conditions having any
apparent contradictions" — this keeps the expensive solver off the
obviously-infeasible edges during VFG construction.  The procedures here
are sound but incomplete: :func:`quick_unsat` returning ``True`` means
definitely unsatisfiable; ``False`` means "don't know".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .terms import And, BoolTerm, FALSE, Le, Lt, Eq, Not, TRUE, conjuncts
from .theory import DifferenceBound, ZERO_NAME, negate_bound, normalize_atom

__all__ = ["quick_unsat", "simplify_conjunction"]


def _literal_bounds(lit: BoolTerm) -> Optional[List[DifferenceBound]]:
    """Difference bounds entailed by one literal, or None if non-arithmetic."""
    negated = isinstance(lit, Not)
    atom = lit.arg if negated else lit
    if not isinstance(atom, (Le, Lt, Eq)):
        return None
    try:
        bounds = normalize_atom(atom)
    except ValueError:
        return None
    if bounds is None:
        return None
    if not negated:
        return bounds
    if isinstance(atom, Eq):
        return None  # not(a == b) is a disjunction: out of scope for the quick check
    return [negate_bound(bounds[0])]


def quick_unsat(term: BoolTerm) -> bool:
    """Cheap sufficient test for unsatisfiability of a guard.

    Detects (1) complementary boolean literals in the top-level
    conjunction (the ``theta and not theta`` pattern of the paper's
    Fig. 2) and (2) negative cycles among the conjunction's difference
    bounds (contradictory order constraints, paper Ex. 5.1).
    """
    if term is FALSE:
        return True
    if term is TRUE:
        return False
    lits = list(conjuncts(term))
    lit_set = set(lits)
    arith: List[DifferenceBound] = []
    for lit in lits:
        if isinstance(lit, Not) and lit.arg in lit_set:
            return True
        bounds = _literal_bounds(lit)
        if bounds is not None:
            arith.extend(bounds)
    if arith:
        return _has_negative_cycle(arith)
    return False


def _has_negative_cycle(bounds: List[DifferenceBound]) -> bool:
    nodes = {ZERO_NAME}
    for b in bounds:
        nodes.add(b.x)
        nodes.add(b.y)
    dist: Dict[str, int] = {v: 0 for v in nodes}
    edges: List[Tuple[str, str, int]] = [(b.y, b.x, b.c) for b in bounds]
    for _ in range(len(nodes)):
        changed = False
        for u, v, w in edges:
            if dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
                changed = True
        if not changed:
            return False
    return True


def simplify_conjunction(term: BoolTerm) -> BoolTerm:
    """Normalize a guard conjunction; returns FALSE if quickly refutable.

    The smart constructors in :mod:`repro.smt.terms` already flatten,
    deduplicate, and cancel complementary literals, so this adds only the
    arithmetic quick check on top.
    """
    if quick_unsat(term):
        return FALSE
    return term
