"""Term language for the constraint formulas Canary generates.

The paper's constraints (guards ``Phi_guard``, load-store orders ``Phi_ls``,
program orders ``Phi_po``) are built from three kinds of atoms:

* opaque boolean variables (branch conditions whose value is unknown
  statically, e.g. the ``theta`` conditions of Fig. 2),
* integer comparisons between program values and constants, and
* strict-order atoms ``O_a < O_b`` between statement order variables.

All of these fit inside quantifier-free integer difference logic plus
propositional structure, which is what :mod:`repro.smt.solver` decides.

Terms are immutable and hash-consed so that structurally equal terms are
reference-equal; this makes guard deduplication during VFG construction
cheap and makes ``theta`` and ``Not(theta)`` trivially recognizable as
complements by the lightweight simplifier.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Tuple

__all__ = [
    "Term",
    "BoolTerm",
    "IntTerm",
    "BoolConst",
    "BoolVar",
    "Not",
    "And",
    "Or",
    "IntConst",
    "IntVar",
    "Add",
    "Sub",
    "Le",
    "Lt",
    "Eq",
    "TRUE",
    "FALSE",
    "true",
    "false",
    "bool_var",
    "int_var",
    "int_const",
    "not_",
    "and_",
    "or_",
    "implies",
    "iff",
    "ite",
    "lt",
    "le",
    "gt",
    "ge",
    "eq",
    "ne",
    "is_literal",
    "literal_atom",
    "conjuncts",
    "structural_key",
]

_interned: dict = {}


def _intern(cls, *args):
    """Hash-cons constructor: one object per structurally-distinct term."""
    key = (cls, args)
    found = _interned.get(key)
    if found is None:
        found = object.__new__(cls)
        found._args = args
        found._hash = hash(key)
        _interned[key] = found
    return found


class Term:
    """Base class of all terms.  Instances are immutable and interned."""

    __slots__ = ("_args", "_hash")

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        return self is other

    def __ne__(self, other):
        return self is not other

    def __reduce__(self):
        # Pickle by structure and re-intern on load.  Unpickling in the
        # *same* process returns the identical object (``loads(dumps(t))
        # is t``); in a worker process it rebuilds the term in that
        # process's intern table, so identity-based ``__eq__`` and the
        # stored hash stay correct there too.  This is what lets whole
        # Φ_all formulas cross a ``ProcessPoolExecutor`` boundary.
        return (_intern, (type(self),) + self._args)

    @property
    def args(self) -> tuple:
        return self._args

    def __repr__(self):
        return self.pretty()

    def pretty(self) -> str:
        raise NotImplementedError


class BoolTerm(Term):
    """A term of boolean sort."""

    __slots__ = ()

    def __and__(self, other: "BoolTerm") -> "BoolTerm":
        return and_(self, other)

    def __or__(self, other: "BoolTerm") -> "BoolTerm":
        return or_(self, other)

    def __invert__(self) -> "BoolTerm":
        return not_(self)


class IntTerm(Term):
    """A term of integer sort."""

    __slots__ = ()

    def __add__(self, other) -> "IntTerm":
        return _mk_add(self, _coerce_int(other))

    def __sub__(self, other) -> "IntTerm":
        return _mk_sub(self, _coerce_int(other))

    def __lt__(self, other) -> BoolTerm:
        return lt(self, other)

    def __le__(self, other) -> BoolTerm:
        return le(self, other)

    def __gt__(self, other) -> BoolTerm:
        return gt(self, other)

    def __ge__(self, other) -> BoolTerm:
        return ge(self, other)


class BoolConst(BoolTerm):
    __slots__ = ()

    @property
    def value(self) -> bool:
        return self._args[0]

    def pretty(self):
        return "true" if self.value else "false"


class BoolVar(BoolTerm):
    __slots__ = ()

    @property
    def name(self) -> str:
        return self._args[0]

    def pretty(self):
        return self.name


class Not(BoolTerm):
    __slots__ = ()

    @property
    def arg(self) -> BoolTerm:
        return self._args[0]

    def pretty(self):
        return f"(not {self.arg.pretty()})"


class And(BoolTerm):
    __slots__ = ()

    def pretty(self):
        return "(and " + " ".join(a.pretty() for a in self.args) + ")"


class Or(BoolTerm):
    __slots__ = ()

    def pretty(self):
        return "(or " + " ".join(a.pretty() for a in self.args) + ")"


class IntConst(IntTerm):
    __slots__ = ()

    @property
    def value(self) -> int:
        return self._args[0]

    def pretty(self):
        return str(self.value)


class IntVar(IntTerm):
    __slots__ = ()

    @property
    def name(self) -> str:
        return self._args[0]

    def pretty(self):
        return self.name


class Add(IntTerm):
    __slots__ = ()

    @property
    def lhs(self) -> IntTerm:
        return self._args[0]

    @property
    def rhs(self) -> IntTerm:
        return self._args[1]

    def pretty(self):
        return f"(+ {self.lhs.pretty()} {self.rhs.pretty()})"


class Sub(IntTerm):
    __slots__ = ()

    @property
    def lhs(self) -> IntTerm:
        return self._args[0]

    @property
    def rhs(self) -> IntTerm:
        return self._args[1]

    def pretty(self):
        return f"(- {self.lhs.pretty()} {self.rhs.pretty()})"


class Le(BoolTerm):
    """``lhs <= rhs`` over integer terms."""

    __slots__ = ()

    @property
    def lhs(self) -> IntTerm:
        return self._args[0]

    @property
    def rhs(self) -> IntTerm:
        return self._args[1]

    def pretty(self):
        return f"(<= {self.lhs.pretty()} {self.rhs.pretty()})"


class Lt(BoolTerm):
    """``lhs < rhs`` over integer terms."""

    __slots__ = ()

    @property
    def lhs(self) -> IntTerm:
        return self._args[0]

    @property
    def rhs(self) -> IntTerm:
        return self._args[1]

    def pretty(self):
        return f"(< {self.lhs.pretty()} {self.rhs.pretty()})"


class Eq(BoolTerm):
    """``lhs == rhs`` over integer terms."""

    __slots__ = ()

    @property
    def lhs(self) -> IntTerm:
        return self._args[0]

    @property
    def rhs(self) -> IntTerm:
        return self._args[1]

    def pretty(self):
        return f"(= {self.lhs.pretty()} {self.rhs.pretty()})"


TRUE: BoolConst = _intern(BoolConst, True)
FALSE: BoolConst = _intern(BoolConst, False)


def true() -> BoolConst:
    return TRUE


def false() -> BoolConst:
    return FALSE


def bool_var(name: str) -> BoolVar:
    return _intern(BoolVar, name)


_fresh_counter = itertools.count()


def fresh_bool(prefix: str = "b") -> BoolVar:
    """A boolean variable guaranteed not to collide with named ones."""
    return bool_var(f"{prefix}!{next(_fresh_counter)}")


def int_var(name: str) -> IntVar:
    return _intern(IntVar, name)


def int_const(value: int) -> IntConst:
    return _intern(IntConst, int(value))


def _coerce_int(x) -> IntTerm:
    if isinstance(x, IntTerm):
        return x
    if isinstance(x, int):
        return int_const(x)
    raise TypeError(f"expected an integer term, got {x!r}")


def _coerce_bool(x) -> BoolTerm:
    if isinstance(x, BoolTerm):
        return x
    if isinstance(x, bool):
        return TRUE if x else FALSE
    raise TypeError(f"expected a boolean term, got {x!r}")


def not_(a) -> BoolTerm:
    a = _coerce_bool(a)
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    if isinstance(a, Not):
        return a.arg
    return _intern(Not, a)


def and_(*parts) -> BoolTerm:
    """N-ary conjunction with flattening, deduplication and constant folding."""
    flat: list = []
    seen = set()
    for p in parts:
        p = _coerce_bool(p)
        stack = [p]
        while stack:
            t = stack.pop()
            if t is TRUE:
                continue
            if t is FALSE:
                return FALSE
            if isinstance(t, And):
                stack.extend(reversed(t.args))
                continue
            if t not in seen:
                seen.add(t)
                flat.append(t)
    for t in flat:
        if not_(t) in seen:
            return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return _intern(And, *flat)


def or_(*parts) -> BoolTerm:
    """N-ary disjunction with flattening, deduplication and constant folding."""
    flat: list = []
    seen = set()
    for p in parts:
        p = _coerce_bool(p)
        stack = [p]
        while stack:
            t = stack.pop()
            if t is FALSE:
                continue
            if t is TRUE:
                return TRUE
            if isinstance(t, Or):
                stack.extend(reversed(t.args))
                continue
            if t not in seen:
                seen.add(t)
                flat.append(t)
    for t in flat:
        if not_(t) in seen:
            return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return _intern(Or, *flat)


def implies(a, b) -> BoolTerm:
    return or_(not_(a), b)


def iff(a, b) -> BoolTerm:
    a, b = _coerce_bool(a), _coerce_bool(b)
    if a is b:
        return TRUE
    return and_(implies(a, b), implies(b, a))


def ite(c, t, e) -> BoolTerm:
    """Boolean if-then-else."""
    c = _coerce_bool(c)
    if c is TRUE:
        return _coerce_bool(t)
    if c is FALSE:
        return _coerce_bool(e)
    return and_(implies(c, t), implies(not_(c), e))


def _mk_add(a: IntTerm, b: IntTerm) -> IntTerm:
    if isinstance(a, IntConst) and isinstance(b, IntConst):
        return int_const(a.value + b.value)
    if isinstance(b, IntConst) and b.value == 0:
        return a
    if isinstance(a, IntConst) and a.value == 0:
        return b
    return _intern(Add, a, b)


def _mk_sub(a: IntTerm, b: IntTerm) -> IntTerm:
    if isinstance(a, IntConst) and isinstance(b, IntConst):
        return int_const(a.value - b.value)
    if isinstance(b, IntConst) and b.value == 0:
        return a
    if a is b:
        return int_const(0)
    return _intern(Sub, a, b)


def le(a, b) -> BoolTerm:
    a, b = _coerce_int(a), _coerce_int(b)
    folded = _fold_cmp(a, b, strict=False)
    if folded is not None:
        return folded
    return _intern(Le, a, b)


def lt(a, b) -> BoolTerm:
    a, b = _coerce_int(a), _coerce_int(b)
    folded = _fold_cmp(a, b, strict=True)
    if folded is not None:
        return folded
    return _intern(Lt, a, b)


def ge(a, b) -> BoolTerm:
    return le(b, a)


def gt(a, b) -> BoolTerm:
    return lt(b, a)


def eq(a, b) -> BoolTerm:
    a, b = _coerce_int(a), _coerce_int(b)
    if a is b:
        return TRUE
    if isinstance(a, IntConst) and isinstance(b, IntConst):
        return TRUE if a.value == b.value else FALSE
    return _intern(Eq, a, b)


def ne(a, b) -> BoolTerm:
    return not_(eq(a, b))


def _fold_cmp(a: IntTerm, b: IntTerm, strict: bool) -> Optional[BoolTerm]:
    if a is b:
        return FALSE if strict else TRUE
    if isinstance(a, IntConst) and isinstance(b, IntConst):
        holds = a.value < b.value if strict else a.value <= b.value
        return TRUE if holds else FALSE
    return None


def is_literal(t: BoolTerm) -> bool:
    """A literal is an atom or the negation of an atom."""
    if isinstance(t, Not):
        t = t.arg
    return isinstance(t, (BoolVar, Le, Lt, Eq, BoolConst))


def literal_atom(t: BoolTerm) -> Tuple[BoolTerm, bool]:
    """Split a literal into ``(atom, polarity)``."""
    if isinstance(t, Not):
        return t.arg, False
    return t, True


def conjuncts(t: BoolTerm) -> Iterable[BoolTerm]:
    """The top-level conjuncts of a term (itself, if not a conjunction)."""
    if isinstance(t, And):
        return t.args
    return (t,)


def structural_key(term: Term) -> str:
    """A stable structural serialization of a term.

    Within one process, interning already makes structurally-equal terms
    reference-equal, so the term object itself is a valid dict key.  This
    string is the *process-independent* equivalent: two terms built in
    different processes (or across pickle boundaries, where hash
    randomization reseeds ``hash(str)``) have the same key iff they are
    structurally identical.  Used by the verdict cache tests and for
    cross-process deduplication.

    Iterative (explicit stack) so arbitrarily deep formulas cannot hit
    the recursion limit.
    """
    parts: list = []
    stack: list = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, str):
            parts.append(t)
        elif isinstance(t, (BoolConst, IntConst)):
            parts.append(f"{type(t).__name__}:{t.value};")
        elif isinstance(t, (BoolVar, IntVar)):
            parts.append(f"{type(t).__name__}:{t.name};")
        else:
            parts.append(f"{type(t).__name__}(")
            stack.append(")")
            stack.extend(reversed(t.args))
    return "".join(parts)
