"""Tseitin transformation from the term DSL to CNF.

Atoms (boolean variables and integer comparisons) map to positive SAT
variables; every internal And/Or gate gets an auxiliary variable with the
standard defining clauses.  The encoder keeps the atom <-> SAT-variable
correspondence so the DPLL(T) loop in :mod:`repro.smt.solver` can hand the
comparison atoms to the difference-logic theory.
"""

from __future__ import annotations

from typing import Dict, List

from .terms import And, BoolConst, BoolTerm, BoolVar, Eq, FALSE, Le, Lt, Not, Or, TRUE

__all__ = ["CnfEncoder"]


class CnfEncoder:
    """Encodes boolean terms into CNF over integer SAT literals.

    SAT variables are positive integers; a literal is ``+v`` or ``-v``.
    """

    def __init__(self) -> None:
        self.clauses: List[List[int]] = []
        self.atom_of_var: Dict[int, BoolTerm] = {}
        self._var_of_atom: Dict[BoolTerm, int] = {}
        self._gate_cache: Dict[BoolTerm, int] = {}
        self._next_var = 1

    @property
    def num_vars(self) -> int:
        return self._next_var - 1

    def _fresh_var(self) -> int:
        v = self._next_var
        self._next_var += 1
        return v

    def fresh_var(self) -> int:
        """Allocate a fresh SAT variable not tied to any atom or gate.

        Incremental solving uses these as *activation literals*: a
        conjunct encoded once to a gate literal ``g`` is enabled per
        query by assuming a fresh ``a`` with the permanent linking
        clause ``(-a, g)``.
        """
        return self._fresh_var()

    def encode_literal(self, term: BoolTerm) -> int:
        """Encode ``term`` (without asserting it) and return its literal.

        Gate-defining clauses accumulate in :attr:`clauses`; callers that
        ship clauses to a SAT core incrementally should track how many
        they have consumed.
        """
        return self._encode(term)

    def cluster_vars(self, term: BoolTerm) -> List[int]:
        """Every SAT variable in ``term``'s encoding: its atom variables
        plus the auxiliary gate variable of each composite subterm.  Must
        be called after the term was encoded (gates exist by then); an
        incremental caller uses this as the *decision cluster* of a
        conjunct — the variables a solve restricted to the conjunct must
        be allowed to branch on.
        """
        out = set()
        stack: List[BoolTerm] = [term]
        while stack:
            t = stack.pop()
            if isinstance(t, (BoolVar, Le, Lt, Eq)):
                out.add(self._var_of_atom[t])
            elif isinstance(t, Not):
                stack.append(t.arg)
            elif isinstance(t, BoolConst):
                out.add(self._gate_cache[TRUE])
            elif isinstance(t, (And, Or)):
                gate = self._gate_cache.get(t)
                if gate is not None:
                    out.add(gate)
                stack.extend(t.args)
        return sorted(out)

    def var_for_atom(self, atom: BoolTerm) -> int:
        v = self._var_of_atom.get(atom)
        if v is None:
            v = self._fresh_var()
            self._var_of_atom[atom] = v
            self.atom_of_var[v] = atom
        return v

    def add_assertion(self, term: BoolTerm) -> None:
        """Assert ``term`` (top-level conjunct) into the clause database."""
        if term is TRUE:
            return
        if term is FALSE:
            self.clauses.append([])
            return
        if isinstance(term, And):
            for part in term.args:
                self.add_assertion(part)
            return
        self.clauses.append([self._encode(term)])

    def _encode(self, term: BoolTerm) -> int:
        """Return a literal equisatisfiably representing ``term``."""
        if isinstance(term, (BoolVar, Le, Lt, Eq)):
            return self.var_for_atom(term)
        if isinstance(term, BoolConst):
            # Encode constants via a dedicated always-true variable.
            v = self._gate_cache.get(TRUE)
            if v is None:
                v = self._fresh_var()
                self._gate_cache[TRUE] = v
                self.clauses.append([v])
            return v if term.value else -v
        if isinstance(term, Not):
            return -self._encode(term.arg)
        cached = self._gate_cache.get(term)
        if cached is not None:
            return cached
        if isinstance(term, And):
            lits = [self._encode(a) for a in term.args]
            g = self._fresh_var()
            for lit in lits:
                self.clauses.append([-g, lit])
            self.clauses.append([g] + [-lit for lit in lits])
        elif isinstance(term, Or):
            lits = [self._encode(a) for a in term.args]
            g = self._fresh_var()
            for lit in lits:
                self.clauses.append([g, -lit])
            self.clauses.append([-g] + lits)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot encode term of type {type(term).__name__}")
        self._gate_cache[term] = g
        return g

    def theory_atoms(self) -> Dict[int, BoolTerm]:
        """SAT variables whose atoms belong to the arithmetic theory."""
        return {
            v: a for v, a in self.atom_of_var.items() if isinstance(a, (Le, Lt, Eq))
        }
