"""SMT solving substrate.

The paper implements Canary on top of Z3; this reproduction ships its own
lazy DPLL(T) solver, sized exactly for the constraint language Canary
emits (propositional guards + integer difference logic for execution
orders).  Public surface:

* :mod:`repro.smt.terms` — the term DSL used for guards everywhere else,
* :class:`repro.smt.solver.Solver` — ``add``/``check``/``model``,
* :func:`repro.smt.simplify.quick_unsat` — the paper's semi-decision filter,
* :func:`repro.smt.portfolio.cube_solve` — cube-and-conquer splitting.
"""

from .terms import (
    TRUE,
    FALSE,
    BoolTerm,
    IntTerm,
    and_,
    bool_var,
    conjuncts,
    eq,
    false,
    ge,
    gt,
    iff,
    implies,
    int_const,
    int_var,
    ite,
    le,
    lt,
    ne,
    not_,
    or_,
    structural_key,
    true,
)
from .simplify import GuardPrefix, quick_unsat, simplify_conjunction
from .solver import SAT, UNKNOWN, UNSAT, Model, Solver, is_satisfiable, solve_formula
from .portfolio import cube_solve, cube_solve_model, pick_split_atoms

__all__ = [
    "TRUE",
    "FALSE",
    "BoolTerm",
    "IntTerm",
    "and_",
    "bool_var",
    "conjuncts",
    "eq",
    "false",
    "ge",
    "gt",
    "iff",
    "implies",
    "int_const",
    "int_var",
    "ite",
    "le",
    "lt",
    "ne",
    "not_",
    "or_",
    "true",
    "GuardPrefix",
    "quick_unsat",
    "simplify_conjunction",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "Model",
    "Solver",
    "is_satisfiable",
    "solve_formula",
    "structural_key",
    "cube_solve",
    "cube_solve_model",
    "pick_split_atoms",
]
