"""Cube-and-conquer constraint splitting (paper §5.2, third optimization).

For complex realizability queries Canary splits the formula on a few
high-impact atoms into *cubes* (partial assignments) and solves the cubes
independently — the paper cites Heule et al.'s cube-and-conquer strategy.
Cubes are embarrassingly parallel; here they run on a thread pool (the
per-path independence argued in §5.2 also lets the bug checking stage run
paths in parallel, see :mod:`repro.detection.realizability`).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .solver import SAT, UNKNOWN, UNSAT, Model, Result, Solver
from .terms import And, BoolTerm, BoolVar, Eq, Le, Lt, Not, Or, and_, not_

__all__ = ["pick_split_atoms", "cube_solve", "cube_solve_model"]


def _collect_atoms(term: BoolTerm, counts: dict) -> None:
    """Count atom *occurrences*; compound subterms are visited once (they
    are interned, so a repeated subterm contributes its atoms once — but
    an atom referenced from several distinct parents counts each time)."""
    stack = [term]
    seen_compound = set()
    while stack:
        t = stack.pop()
        if isinstance(t, (BoolVar, Le, Lt, Eq)):
            counts[t] = counts.get(t, 0) + 1
            continue
        if t in seen_compound:
            continue
        seen_compound.add(t)
        if isinstance(t, Not):
            stack.append(t.arg)
        elif isinstance(t, (And, Or)):
            stack.extend(t.args)


def pick_split_atoms(term: BoolTerm, k: int = 2) -> List[BoolTerm]:
    """Choose up to ``k`` atoms to split on: the most frequently occurring
    atoms, which prune the most when fixed (a simple lookahead proxy)."""
    counts: dict = {}
    _collect_atoms(term, counts)
    ranked = sorted(counts, key=lambda a: -counts[a])
    return ranked[:k]


def _cubes(atoms: Sequence[BoolTerm]) -> Iterable[List[BoolTerm]]:
    if not atoms:
        yield []
        return
    for rest in _cubes(atoms[1:]):
        yield [atoms[0]] + rest
        yield [not_(atoms[0])] + rest


def cube_solve_model(
    term: BoolTerm,
    split_atoms: Optional[Sequence[BoolTerm]] = None,
    max_workers: int = 4,
    solver_factory: Optional[Callable[[], Solver]] = None,
    max_conflicts: Optional[int] = None,
    timeout: Optional[float] = None,
    recorder=None,
) -> Tuple[Result, Optional[Model], str]:
    """Decide ``term`` by splitting into cubes solved in parallel.

    SAT if any cube is SAT; UNSAT only if *every* cube is UNSAT; UNKNOWN
    if any cube exhausted its budget and no cube was SAT — an undecided
    cube could hide a model, so UNKNOWN is never collapsed into UNSAT.
    On SAT the *winning cube's* model comes back too — it satisfies the
    original formula (the cube only fixes a few atoms), so realizability
    checking can extract a witness interleaving from it exactly as in
    the monolithic path.

    Returns ``(verdict, model, unknown_reason)``: on UNKNOWN the third
    element carries the first undecided cube's reason (``'conflicts'``,
    ``'deadline'``, ...), empty otherwise.

    ``max_conflicts`` is the per-cube conflict budget and ``timeout``
    the per-cube wall budget in seconds; both are ignored when an
    explicit ``solver_factory`` is supplied (the factory then owns the
    budgets).

    ``recorder`` is an optional :class:`~repro.obs.tracer.SpanRecorder`:
    each decided cube is recorded as a ``solver.cube`` span with the
    helper thread's timing (recorded from the coordinating thread —
    cube workers never touch the recorder, which is single-threaded).
    """
    if solver_factory is None:
        solver_factory = lambda: Solver(max_conflicts=max_conflicts, timeout=timeout)
    if split_atoms is None:
        split_atoms = pick_split_atoms(term)
    if not split_atoms:
        solver = solver_factory()
        solver.add(term)
        return solver.check(), solver.model(), solver.unknown_reason or ""

    def solve_cube(indexed) -> Tuple[int, Result, Optional[Model], str, float, float]:
        index, cube = indexed
        t0 = time.time()
        solver = solver_factory()
        solver.add(term, *cube)
        result = solver.check()
        return index, result, solver.model(), solver.unknown_reason or "", t0, time.time()

    results: List[Result] = []
    unknown_reason = ""
    cubes = list(_cubes(list(split_atoms)))
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        for index, result, model, reason, t0, t1 in pool.map(
            solve_cube, enumerate(cubes)
        ):
            if recorder is not None:
                recorder.record_span(
                    "solver.cube", t0, t1, index=index, verdict=result
                )
            if result is SAT:
                return SAT, model, ""
            if result is UNKNOWN and not unknown_reason:
                unknown_reason = reason or "conflicts"
            results.append(result)
    if any(r is UNKNOWN for r in results):
        return UNKNOWN, None, unknown_reason
    return UNSAT, None, ""


def cube_solve(
    term: BoolTerm,
    split_atoms: Optional[Sequence[BoolTerm]] = None,
    max_workers: int = 4,
    solver_factory: Optional[Callable[[], Solver]] = None,
    max_conflicts: Optional[int] = None,
    timeout: Optional[float] = None,
) -> Result:
    """Verdict-only wrapper over :func:`cube_solve_model`."""
    verdict, _model, _reason = cube_solve_model(
        term,
        split_atoms=split_atoms,
        max_workers=max_workers,
        solver_factory=solver_factory,
        max_conflicts=max_conflicts,
        timeout=timeout,
    )
    return verdict
