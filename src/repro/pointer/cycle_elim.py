"""Andersen's analysis with online cycle elimination.

Inclusion-constraint graphs develop large cycles (mutual copies), and
every node on a cycle provably ends with the same points-to set — the
classic optimization (Fähndrich et al.; Hardekopf & Lin's lazy cycle
detection, which SVF/Saber-class tools implement) collapses cycles into
a single representative as they are discovered.  This variant exists to
make the baseline comparison fair: the Fig. 7 Saber curve is measured
with the *stronger* of the two solvers
(``andersen(collapse_cycles=True)`` delegates here).

Algorithm: the standard worklist solver over union-find representatives,
with *lazy cycle detection* — when propagation along a copy edge leaves
the target's set unchanged-and-equal to the source's, a DFS checks for a
cycle through that edge and the whole strongly-connected component is
merged.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ..ir.instructions import (
    AddrOfInst,
    AllocInst,
    CallInst,
    CopyInst,
    ForkInst,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.module import IRModule
from ..ir.values import FunctionRef, MemObject, Value, Variable
from .andersen import AndersenResult, _address_taken_functions

__all__ = ["andersen_collapsing"]


class _Graph:
    """Constraint graph over union-find representatives."""

    def __init__(self) -> None:
        self.parent: Dict[object, object] = {}
        self.pts: Dict[object, Set[object]] = {}
        self.succs: Dict[object, Set[object]] = {}
        self.load_uses: Dict[object, List[object]] = {}
        self.store_uses: Dict[object, List[object]] = {}
        self.collapsed = 0

    def find(self, n: object) -> object:
        root = n
        while self.parent.get(root, root) is not root:
            root = self.parent.get(root, root)
        while self.parent.get(n, n) is not root:
            self.parent[n], n = root, self.parent.get(n, n)
        return root

    def pset(self, n: object) -> Set[object]:
        n = self.find(n)
        s = self.pts.get(n)
        if s is None:
            s = set()
            self.pts[n] = s
        return s

    def add_edge(self, src: object, dst: object) -> bool:
        src, dst = self.find(src), self.find(dst)
        if src is dst:
            return False
        succs = self.succs.setdefault(src, set())
        if dst in succs:
            return False
        succs.add(dst)
        return True

    def merge(self, a: object, b: object) -> object:
        """Union two representatives, merging their sets and edges."""
        a, b = self.find(a), self.find(b)
        if a is b:
            return a
        self.parent[b] = a
        self.pts.setdefault(a, set()).update(self.pts.pop(b, ()))
        self.succs.setdefault(a, set()).update(self.succs.pop(b, ()))
        self.succs[a].discard(a)
        self.succs[a].discard(b)
        self.load_uses.setdefault(a, []).extend(self.load_uses.pop(b, ()))
        self.store_uses.setdefault(a, []).extend(self.store_uses.pop(b, ()))
        self.collapsed += 1
        return a

    def collapse_cycle_through(self, start: object) -> bool:
        """DFS from ``start``; if a cycle through ``start`` exists, merge
        every node on it.  Returns True when something was merged."""
        start = self.find(start)
        stack: List[Tuple[object, List[object]]] = [(start, [start])]
        seen: Set[object] = set()
        while stack:
            node, path = stack.pop()
            for succ in list(self.succs.get(node, ())):
                succ = self.find(succ)
                if succ is start and len(path) > 1:
                    rep = start
                    for member in path[1:]:
                        rep = self.merge(rep, member)
                    return True
                if succ not in seen:
                    seen.add(succ)
                    if len(path) < 64:  # bound the search depth
                        stack.append((succ, path + [succ]))
        return False


def andersen_collapsing(
    module: IRModule,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
) -> AndersenResult:
    """Inclusion-based points-to with lazy cycle elimination."""
    g = _Graph()
    worklist: deque = deque()

    def seed(n: object, target: object) -> None:
        s = g.pset(n)
        if target not in s:
            s.add(target)
            worklist.append(g.find(n))

    def edge(src: object, dst: object) -> None:
        if g.add_edge(src, dst) and g.pset(src):
            worklist.append(g.find(src))

    def bind_call(inst) -> None:
        if isinstance(inst.callee, FunctionRef):
            targets = [inst.callee.name]
        else:
            targets = [
                name
                for name in _address_taken_functions(module)
                if len(module.functions[name].params) == len(inst.args)
            ]
        for name in targets:
            callee = module.functions.get(name)
            if callee is None:
                continue
            for formal, actual in zip(callee.params, inst.args):
                if isinstance(actual, Variable):
                    edge(actual, formal)
                elif isinstance(actual, FunctionRef):
                    seed(formal, actual)
            dst = getattr(inst, "dst", None)
            if dst is not None:
                for value, _g in callee.returns:
                    if isinstance(value, Variable):
                        edge(value, dst)
                    elif isinstance(value, FunctionRef):
                        seed(dst, value)

    for func in module.functions.values():
        for inst in func.body:
            if isinstance(inst, (AllocInst, AddrOfInst)):
                seed(inst.dst, inst.obj)
            elif isinstance(inst, CopyInst):
                if isinstance(inst.src, Variable):
                    edge(inst.src, inst.dst)
                elif isinstance(inst.src, FunctionRef):
                    seed(inst.dst, inst.src)
            elif isinstance(inst, PhiInst):
                for value, _guard in inst.incomings:
                    if isinstance(value, Variable):
                        edge(value, inst.dst)
                    elif isinstance(value, FunctionRef):
                        seed(inst.dst, value)
            elif isinstance(inst, LoadInst):
                if isinstance(inst.pointer, Variable):
                    g.load_uses.setdefault(g.find(inst.pointer), []).append(inst.dst)
            elif isinstance(inst, StoreInst):
                if isinstance(inst.pointer, Variable) and isinstance(
                    inst.value, (Variable, FunctionRef)
                ):
                    g.store_uses.setdefault(g.find(inst.pointer), []).append(
                        inst.value
                    )
            elif isinstance(inst, (CallInst, ForkInst)):
                bind_call(inst)

    steps = 0
    while worklist:
        if max_steps is not None and steps >= max_steps:
            break
        if deadline is not None and steps % 4096 == 0 and time.perf_counter() > deadline:
            break
        steps += 1
        node = g.find(worklist.popleft())
        node_pts = g.pset(node)
        for obj in list(node_pts):
            if not isinstance(obj, MemObject):
                continue
            for dst in g.load_uses.get(node, ()):
                edge(obj, dst)
            for src in g.store_uses.get(node, ()):
                if isinstance(src, FunctionRef):
                    seed(obj, src)
                else:
                    edge(src, obj)
        stalled = []
        for dst in list(g.succs.get(node, ())):
            dst = g.find(dst)
            if dst is node:
                continue
            dst_pts = g.pset(dst)
            new = node_pts - dst_pts
            if new:
                dst_pts |= new
                worklist.append(dst)
            elif node_pts and node_pts == dst_pts:
                stalled.append(dst)
        # Lazy cycle detection on stalled, set-equal edges.
        for dst in stalled:
            if g.find(dst) is g.find(node):
                continue
            if g.collapse_cycle_through(g.find(node)):
                worklist.append(g.find(node))
                break

    # Project representative sets back to every member node.
    resolved: Dict[object, Set[object]] = {}
    members: Dict[object, List[object]] = {}
    for n in list(g.parent) + list(g.pts):
        members.setdefault(g.find(n), []).append(n)
    for rep, pts in g.pts.items():
        rep = g.find(rep)
        for member in members.get(rep, [rep]):
            resolved[member] = g.pts.get(g.find(rep), set())
        resolved[rep] = g.pts.get(rep, pts)
    result = AndersenResult(resolved)
    result.collapsed_nodes = g.collapsed  # type: ignore[attr-defined]
    return result
