"""Pointer analyses.

* :mod:`repro.pointer.steensgaard` — unification-based, almost-linear;
  used for the thread call graph (paper §6).
* :mod:`repro.pointer.andersen` — inclusion-based, exhaustive; the core
  of the Saber-style baseline (paper §7.1).
* :mod:`repro.pointer.flowsensitive` — exhaustive flow-sensitive
  points-to; the core of the FSAM-style baseline (paper §7.1).

Canary itself performs no exhaustive points-to analysis: Alg. 1/2
piggyback the pointer reasoning on VFG construction (see
:mod:`repro.vfg`).
"""

from .andersen import AndersenResult, andersen
from .cycle_elim import andersen_collapsing
from .flowsensitive import FlowSensitiveResult, flow_sensitive_pointsto
from .steensgaard import SteensgaardResult, steensgaard

__all__ = [
    "AndersenResult",
    "andersen",
    "andersen_collapsing",
    "FlowSensitiveResult",
    "flow_sensitive_pointsto",
    "SteensgaardResult",
    "steensgaard",
]
