"""Steensgaard's unification-based points-to analysis.

The paper (§6) uses Steensgaard's almost-linear-time analysis to resolve
function pointers when building the *thread call graph*, because fork
targets are often passed as function pointers and a flow-insensitive
analysis suffices for call-graph construction (citing [25, 44, 59]).

The implementation is the classic union-find formulation: each value has
an equivalence class; every class has one points-to successor class; a
store/load unifies through the successor.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from ..ir.instructions import (
    AddrOfInst,
    AllocInst,
    CallInst,
    CopyInst,
    ForkInst,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.module import IRModule
from ..ir.values import FunctionRef, MemObject, Value, Variable

__all__ = ["SteensgaardResult", "steensgaard"]


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._items: Dict[int, object] = {}
        self._next = 0
        self._of: Dict[object, int] = {}
        # class representative -> pointee class (the single Steensgaard successor)
        self.pointee: Dict[int, int] = {}
        # class representative -> contents (objects / function refs in the class)
        self.contents: Dict[int, Set[object]] = {}

    def node(self, item: object) -> int:
        idx = self._of.get(item)
        if idx is None:
            idx = self._next
            self._next += 1
            self._of[item] = idx
            self._parent[idx] = idx
            self.contents[idx] = set()
            if isinstance(item, (MemObject, FunctionRef)):
                self.contents[idx].add(item)
        return idx

    def find(self, idx: int) -> int:
        root = idx
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[idx] != root:
            self._parent[idx], idx = root, self._parent[idx]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        self._parent[rb] = ra
        self.contents[ra] |= self.contents.pop(rb, set())
        pa, pb = self.pointee.get(ra), self.pointee.pop(rb, None)
        if pa is not None and pb is not None:
            merged = self.union(pa, pb)
            self.pointee[self.find(ra)] = self.find(merged)
        elif pb is not None:
            self.pointee[ra] = pb
        return self.find(ra)

    def points_to_class(self, idx: int) -> int:
        """The pointee class of ``idx``'s class, created on demand."""
        root = self.find(idx)
        succ = self.pointee.get(root)
        if succ is None:
            succ = self.node(("$pointee", root))
            self.pointee[root] = succ
        return self.find(succ)


class SteensgaardResult:
    """Query interface over the computed equivalence classes."""

    def __init__(self, uf: _UnionFind) -> None:
        self._uf = uf

    def points_to(self, value: Value) -> FrozenSet[object]:
        """Objects and function refs the value may point to."""
        idx = self._uf._of.get(value)
        if idx is None:
            return frozenset()
        pointee = self._uf.pointee.get(self._uf.find(idx))
        if pointee is None:
            return frozenset()
        return frozenset(self._uf.contents.get(self._uf.find(pointee), ()))

    def callees(self, value: Value) -> FrozenSet[str]:
        """Function names a call/fork through ``value`` may target."""
        if isinstance(value, FunctionRef):
            return frozenset({value.name})
        return frozenset(
            item.name for item in self.points_to(value) if isinstance(item, FunctionRef)
        )

    def may_alias(self, a: Value, b: Value) -> bool:
        pa, pb = self.points_to(a), self.points_to(b)
        if not pa or not pb:
            ia = self._uf._of.get(a)
            ib = self._uf._of.get(b)
            if ia is None or ib is None:
                return False
            ra = self._uf.find(self._uf.points_to_class(ia))
            rb = self._uf.find(self._uf.points_to_class(ib))
            return ra == rb
        return bool(pa & pb)


def steensgaard(module: IRModule) -> SteensgaardResult:
    """Run Steensgaard's analysis over a lowered module.

    One pass over all instructions with union-find; inter-procedural
    assignments (arguments, returns, fork parameters) unify directly,
    which is what makes the result sound for call-graph construction
    even before call targets are known (a second pass closes over
    indirect calls discovered in the first).
    """
    uf = _UnionFind()

    def assign(dst: Value, src: Value) -> None:
        """``dst = src``: a FunctionRef behaves like ``&f`` (dst points to
        the function); other values unify whole classes (a sound, standard
        strengthening of the pointee-join rule)."""
        if isinstance(src, FunctionRef):
            uf.union(uf.points_to_class(uf.node(dst)), uf.node(src))
        elif isinstance(src, Variable):
            uf.union(uf.node(dst), uf.node(src))

    def process_instructions() -> None:
        for func in module.functions.values():
            for inst in func.body:
                if isinstance(inst, (AllocInst, AddrOfInst)):
                    # dst points to obj: obj joins dst's pointee class.
                    pointee = uf.points_to_class(uf.node(inst.dst))
                    uf.union(pointee, uf.node(inst.obj))
                elif isinstance(inst, CopyInst):
                    assign(inst.dst, inst.src)
                elif isinstance(inst, PhiInst):
                    for value, _guard in inst.incomings:
                        assign(inst.dst, value)
                elif isinstance(inst, LoadInst):
                    # dst = *p:  pt([dst]) ∪= pt(pt([p]))
                    cell = uf.points_to_class(uf.points_to_class(uf.node(inst.pointer)))
                    uf.union(uf.points_to_class(uf.node(inst.dst)), cell)
                elif isinstance(inst, StoreInst):
                    # *p = v:  pt(pt([p])) ∪= pt([v]); a FunctionRef value
                    # lands *inside* the cell class (like storing &f).
                    cell = uf.points_to_class(uf.points_to_class(uf.node(inst.pointer)))
                    if isinstance(inst.value, FunctionRef):
                        uf.union(cell, uf.node(inst.value))
                    elif isinstance(inst.value, Variable):
                        uf.union(cell, uf.points_to_class(uf.node(inst.value)))
                elif isinstance(inst, (CallInst, ForkInst)):
                    _process_call(inst)

    def _process_call(inst) -> None:
        result = SteensgaardResult(uf)
        callee_names = result.callees(inst.callee)
        for name in callee_names:
            callee = module.functions.get(name)
            if callee is None:
                continue
            for formal, actual in zip(callee.params, inst.args):
                assign(formal, actual)
            if isinstance(inst, CallInst) and inst.dst is not None:
                for value, _guard in callee.returns:
                    assign(inst.dst, value)

    # Iterate to a fixed point: resolving indirect calls can expose new
    # parameter unifications (bounded by the number of classes, so this
    # terminates quickly in practice).
    for _ in range(4):
        before = uf._next, len(uf._parent), _class_signature(uf)
        process_instructions()
        if (uf._next, len(uf._parent), _class_signature(uf)) == before:
            break
    return SteensgaardResult(uf)


def _class_signature(uf: _UnionFind) -> int:
    return hash(tuple(sorted(uf.find(i) for i in range(uf._next))))
