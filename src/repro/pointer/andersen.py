"""Andersen-style inclusion-based points-to analysis.

This is the exhaustive, flow-insensitive pointer analysis underlying the
Saber baseline (paper §7.1: "Saber performs an Andersen-style,
flow-insensitive points-to analysis, which can trivially model the
thread interference").  The classic worklist formulation: subset
constraints between points-to sets, with load/store constraints adding
copy edges dynamically as sets grow.  Worst-case cubic — which is
exactly the scalability wall the paper's Fig. 7 exhibits for Saber on
larger subjects.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir.instructions import (
    AddrOfInst,
    AllocInst,
    CallInst,
    CopyInst,
    ForkInst,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.module import IRModule
from ..ir.values import FunctionRef, MemObject, Value, Variable

__all__ = ["AndersenResult", "andersen"]

_Node = object  # Variable | MemObject ("content of o" node)


class AndersenResult:
    def __init__(self, pts: Dict[_Node, Set[object]]) -> None:
        self._pts = pts

    def points_to(self, value: Value) -> FrozenSet[object]:
        if isinstance(value, FunctionRef):
            return frozenset({value})
        return frozenset(self._pts.get(value, ()))

    def may_alias(self, a: Value, b: Value) -> bool:
        return bool(self.points_to(a) & self.points_to(b))

    def callees(self, value: Value) -> FrozenSet[str]:
        return frozenset(
            t.name for t in self.points_to(value) if isinstance(t, FunctionRef)
        )

    @property
    def total_facts(self) -> int:
        return sum(len(s) for s in self._pts.values())


def andersen(
    module: IRModule,
    max_steps: Optional[int] = None,
    deadline: Optional[float] = None,
    collapse_cycles: bool = False,
) -> AndersenResult:
    """Solve the inclusion constraints of a module to a fixed point.

    ``max_steps`` bounds worklist pops and ``deadline`` (a
    ``time.perf_counter`` instant) bounds wall time — both for benchmark
    budgets; the partial result is still a sound under-approximation of
    the fixed point and the caller flags the run as timed out.
    ``collapse_cycles`` switches to the online-cycle-elimination solver
    (:func:`repro.pointer.cycle_elim.andersen_collapsing`).
    """
    import time as _time

    if collapse_cycles:
        from .cycle_elim import andersen_collapsing

        return andersen_collapsing(module, max_steps=max_steps, deadline=deadline)
    pts: Dict[_Node, Set[object]] = {}
    succs: Dict[_Node, Set[_Node]] = {}  # copy edges: pts(src) ⊆ pts(dst)
    load_uses: Dict[_Node, List[_Node]] = {}  # p = *q: q -> p
    store_uses: Dict[_Node, List[_Node]] = {}  # *p = q: p -> q

    def pset(n: _Node) -> Set[object]:
        s = pts.get(n)
        if s is None:
            s = set()
            pts[n] = s
        return s

    def add_edge(src: _Node, dst: _Node, worklist: deque) -> None:
        if dst in succs.setdefault(src, set()):
            return
        succs[src].add(dst)
        if pset(src):
            worklist.append(src)

    worklist: deque = deque()

    def seed(n: _Node, target: object) -> None:
        s = pset(n)
        if target not in s:
            s.add(target)
            worklist.append(n)

    # ----- constraint generation (one pass; calls resolved on the fly) -----
    for func in module.functions.values():
        for inst in func.body:
            if isinstance(inst, (AllocInst, AddrOfInst)):
                seed(inst.dst, inst.obj)
            elif isinstance(inst, CopyInst):
                if isinstance(inst.src, Variable):
                    add_edge(inst.src, inst.dst, worklist)
                elif isinstance(inst.src, FunctionRef):
                    seed(inst.dst, inst.src)
            elif isinstance(inst, PhiInst):
                for value, _g in inst.incomings:
                    if isinstance(value, Variable):
                        add_edge(value, inst.dst, worklist)
                    elif isinstance(value, FunctionRef):
                        seed(inst.dst, value)
            elif isinstance(inst, LoadInst):
                if isinstance(inst.pointer, Variable):
                    load_uses.setdefault(inst.pointer, []).append(inst.dst)
            elif isinstance(inst, StoreInst):
                if isinstance(inst.pointer, Variable) and isinstance(
                    inst.value, (Variable, FunctionRef)
                ):
                    store_uses.setdefault(inst.pointer, []).append(inst.value)
            elif isinstance(inst, (CallInst, ForkInst)):
                _bind_call(module, inst, add_edge, seed, worklist)

    steps = 0
    while worklist:
        if max_steps is not None and steps >= max_steps:
            break
        if deadline is not None and steps % 4096 == 0 and _time.perf_counter() > deadline:
            break
        steps += 1
        node = worklist.popleft()
        node_pts = pset(node)
        # Load/store constraints instantiate new copy edges per object.
        for obj in list(node_pts):
            if not isinstance(obj, MemObject):
                continue
            for dst in load_uses.get(node, ()):
                add_edge(obj, dst, worklist)
            for src in store_uses.get(node, ()):
                if isinstance(src, FunctionRef):
                    seed(obj, src)
                else:
                    add_edge(src, obj, worklist)
        # Propagate along copy edges.
        for dst in succs.get(node, ()):  # pts(node) ⊆ pts(dst)
            dst_pts = pset(dst)
            new = node_pts - dst_pts
            if new:
                dst_pts |= new
                worklist.append(dst)
    return AndersenResult(pts)


def _bind_call(module: IRModule, inst, add_edge, seed, worklist) -> None:
    """Direct call/fork binding; indirect targets are bound conservatively
    to every function whose address is taken (flow-insensitive closure)."""
    targets: List[str] = []
    if isinstance(inst.callee, FunctionRef):
        targets = [inst.callee.name]
    else:
        # Conservative: any address-taken function with a matching arity.
        taken = _address_taken_functions(module)
        targets = [
            name
            for name in taken
            if len(module.functions[name].params) == len(inst.args)
        ]
    for name in targets:
        callee = module.functions.get(name)
        if callee is None:
            continue
        for formal, actual in zip(callee.params, inst.args):
            if isinstance(actual, Variable):
                add_edge(actual, formal, worklist)
            elif isinstance(actual, FunctionRef):
                seed(formal, actual)
        dst = getattr(inst, "dst", None)
        if dst is not None:
            for value, _g in callee.returns:
                if isinstance(value, Variable):
                    add_edge(value, dst, worklist)
                elif isinstance(value, FunctionRef):
                    seed(dst, value)


_taken_cache: Dict[int, List[str]] = {}


def _address_taken_functions(module: IRModule) -> List[str]:
    cached = _taken_cache.get(id(module))
    if cached is not None:
        return cached
    taken: Set[str] = set()
    for func in module.functions.values():
        for inst in func.body:
            for value in inst.used_values():
                if isinstance(value, FunctionRef):
                    taken.add(value.name)
            if isinstance(inst, CopyInst) and isinstance(inst.src, FunctionRef):
                taken.add(inst.src.name)
    out = sorted(t for t in taken if t in module.functions)
    _taken_cache[id(module)] = out
    return out
