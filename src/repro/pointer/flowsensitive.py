"""Exhaustive flow-sensitive points-to analysis (the FSAM baseline core).

FSAM (paper [60]) is an Andersen-precision, *flow-sensitive* pointer
analysis for multithreaded programs: every statement carries its own
view of memory (IN/OUT maps from objects to value sets), propagated
through the control flow and, for shared objects, across threads along
pre-computed thread-aware def-use chains.

Faithful to the original's cost profile, this implementation keeps a
per-statement memory snapshot — which is precisely the memory blow-up
Fig. 7b shows for FSAM on subjects beyond ~50 KLoC — and iterates the
whole program to a fixed point.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir.instructions import (
    AddrOfInst,
    AllocInst,
    CallInst,
    CopyInst,
    ForkInst,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ..ir.module import IRModule
from ..ir.values import FunctionRef, MemObject, Value, Variable
from ..threads.callgraph import ThreadCallGraph, build_thread_call_graph
from ..threads.mhp import MhpAnalysis

__all__ = ["FlowSensitiveResult", "flow_sensitive_pointsto"]

_Memory = Dict[MemObject, FrozenSet[object]]


class FlowSensitiveResult:
    def __init__(
        self,
        var_pts: Dict[Variable, Set[object]],
        memory_at: Dict[int, _Memory],
        iterations: int,
        timed_out: bool = False,
    ) -> None:
        self.var_pts = var_pts
        self.memory_at = memory_at
        self.iterations = iterations
        #: the deadline cut the fixed point short: the result is a sound
        #: partial under-approximation, not a fixpoint — callers must not
        #: treat it as converged
        self.timed_out = timed_out

    def points_to(self, value: Value) -> FrozenSet[object]:
        if isinstance(value, FunctionRef):
            return frozenset({value})
        if isinstance(value, Variable):
            return frozenset(self.var_pts.get(value, ()))
        return frozenset()

    def may_alias(self, a: Value, b: Value) -> bool:
        return bool(self.points_to(a) & self.points_to(b))

    def memory_before(self, label: int) -> _Memory:
        return self.memory_at.get(label, {})

    @property
    def total_facts(self) -> int:
        facts = sum(len(s) for s in self.var_pts.values())
        facts += sum(
            len(vals) for mem in self.memory_at.values() for vals in mem.values()
        )
        return facts


def flow_sensitive_pointsto(
    module: IRModule,
    tcg: Optional[ThreadCallGraph] = None,
    max_iterations: int = 20,
    deadline: Optional[float] = None,
) -> FlowSensitiveResult:
    """Whole-program flow-sensitive points-to with cross-thread def-use.

    ``deadline`` (a ``time.perf_counter`` instant) aborts between
    functions for benchmark budgets; the partial result carries an
    explicit ``timed_out`` flag (it used to be on the caller to notice).
    """
    import time as _time
    if tcg is None:
        tcg = build_thread_call_graph(module)
    mhp = MhpAnalysis(tcg)

    var_pts: Dict[Variable, Set[object]] = {}
    #: per-statement incoming memory snapshot (the expensive part)
    memory_at: Dict[int, _Memory] = {}
    #: per-function exit memory (flow-insensitive summary glue)
    exit_memory: Dict[str, _Memory] = {}
    #: all stores, for the cross-thread def-use pass
    stores: List[StoreInst] = [
        i
        for f in module.functions.values()
        for i in f.body
        if isinstance(i, StoreInst)
    ]

    def vset(v: Variable) -> Set[object]:
        s = var_pts.get(v)
        if s is None:
            s = set()
            var_pts[v] = s
        return s

    def value_pts(value: Value) -> Set[object]:
        if isinstance(value, Variable):
            return vset(value)
        if isinstance(value, FunctionRef):
            return {value}
        return set()

    iterations = 0
    changed = True
    timed_out = False
    while changed and iterations < max_iterations:
        if deadline is not None and _time.perf_counter() > deadline:
            timed_out = True
            break
        iterations += 1
        changed = False
        for func in module.functions.values():
            if deadline is not None and _time.perf_counter() > deadline:
                timed_out = True
                break
            memory: _Memory = {}
            # Seed with callers'/other threads' effects discovered so far.
            seed = exit_memory.get(func.name)
            if seed:
                memory.update(seed)
            for inst in func.body:
                snapshot = {o: v for o, v in memory.items()}
                if memory_at.get(inst.label) != snapshot:
                    memory_at[inst.label] = snapshot
                    changed = True
                if isinstance(inst, (AllocInst, AddrOfInst)):
                    if inst.obj not in vset(inst.dst):
                        vset(inst.dst).add(inst.obj)
                        changed = True
                elif isinstance(inst, CopyInst):
                    changed |= _merge(vset(inst.dst), value_pts(inst.src))
                elif isinstance(inst, PhiInst):
                    for value, _g in inst.incomings:
                        changed |= _merge(vset(inst.dst), value_pts(value))
                elif isinstance(inst, LoadInst):
                    for obj in list(value_pts(inst.pointer)):
                        if isinstance(obj, MemObject):
                            changed |= _merge(
                                vset(inst.dst), set(memory.get(obj, frozenset()))
                            )
                    # Cross-thread def-use: stores that may happen in
                    # parallel also reach this load.
                    for store in stores:
                        if store.pointer is inst.pointer:
                            continue
                        if not _aliases(value_pts(store.pointer), value_pts(inst.pointer)):
                            continue
                        if mhp.may_happen_in_parallel(store, inst):
                            changed |= _merge(vset(inst.dst), value_pts(store.value))
                elif isinstance(inst, StoreInst):
                    targets = [
                        o for o in value_pts(inst.pointer) if isinstance(o, MemObject)
                    ]
                    incoming = frozenset(value_pts(inst.value))
                    for obj in targets:
                        if len(targets) == 1:
                            new = incoming  # strong update
                        else:
                            new = memory.get(obj, frozenset()) | incoming
                        if memory.get(obj) != new:
                            memory[obj] = new
                elif isinstance(inst, (CallInst, ForkInst)):
                    callees = _call_targets(module, tcg, inst)
                    for name in callees:
                        callee = module.functions.get(name)
                        if callee is None:
                            continue
                        for formal, actual in zip(callee.params, inst.args):
                            changed |= _merge(vset(formal), value_pts(actual))
                        dst = getattr(inst, "dst", None)
                        if dst is not None:
                            for value, _g in callee.returns:
                                changed |= _merge(vset(dst), value_pts(value))
                        # Caller memory flows into callee and back.
                        target = exit_memory.setdefault(name, {})
                        for obj, vals in memory.items():
                            old = target.get(obj, frozenset())
                            new = old | vals
                            if new != old:
                                target[obj] = new
                                changed = True
                        for obj, vals in exit_memory.get(name, {}).items():
                            old = memory.get(obj, frozenset())
                            if not vals <= old:
                                memory[obj] = old | vals
            # Publish this function's exit memory.
            target = exit_memory.setdefault(func.name, {})
            for obj, vals in memory.items():
                old = target.get(obj, frozenset())
                new = old | vals
                if new != old:
                    target[obj] = new
                    changed = True
    return FlowSensitiveResult(var_pts, memory_at, iterations, timed_out=timed_out)


def _merge(dst: Set[object], src: Set[object]) -> bool:
    before = len(dst)
    dst |= src
    return len(dst) != before


def _aliases(a: Set[object], b: Set[object]) -> bool:
    return any(isinstance(o, MemObject) and o in b for o in a)


def _call_targets(module: IRModule, tcg: ThreadCallGraph, inst) -> List[str]:
    if isinstance(inst.callee, FunctionRef):
        return [inst.callee.name]
    return sorted(tcg.callees_at(inst))
