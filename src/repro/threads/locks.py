"""Lock-region analysis — the paper's future-work extension (1).

The published Canary parses ``lock``/``unlock`` but does not use them to
constrain interleavings (§5.1: Φ_po "does not attempt to identify all
the program orders enforced by other synchronization semantics like
lock/unlock"), noting the framework admits new synchronization semantics
as plug-ins.  This module is that plug-in: it computes, per statement,
the critical sections (mutex, lock statement, unlock statement) that
enclose it, intra-procedurally.  The order-constraint builder uses the
regions to add *mutual exclusion* constraints between critical sections
of the same mutex in different threads:

    O_unlock_a < O_lock_b  or  O_unlock_b < O_lock_a

together with the section-internal order ``O_lock < O_stmt < O_unlock``.

Enable with ``AnalysisConfig(model_locks=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..ir.instructions import Instruction, LockInst, UnlockInst
from ..ir.module import IRModule

__all__ = ["LockRegion", "LockAnalysis"]


@dataclass(frozen=True)
class LockRegion:
    """One critical section: the mutex plus its lock/unlock statements."""

    mutex: str
    lock: Instruction
    unlock: Instruction

    def __repr__(self) -> str:
        return f"<region {self.mutex} ℓ{self.lock.label}..ℓ{self.unlock.label}>"


class LockAnalysis:
    """Per-statement enclosing critical sections (intra-procedural).

    A ``lock(m)`` opens a section; the matching ``unlock(m)`` in the same
    function closes it.  Unbalanced locks (no unlock before function end)
    produce no region — a soundy choice biased against false mutual
    exclusion (missing regions only lose precision, never soundness of
    the exclusion constraints).
    """

    def __init__(self, module: IRModule) -> None:
        self.module = module
        self._regions_of: Dict[int, Tuple[LockRegion, ...]] = {}
        self._index()

    def _index(self) -> None:
        for func in self.module.functions.values():
            open_locks: Dict[str, List[Instruction]] = {}
            pending: Dict[int, List[str]] = {}  # label -> open mutexes at stmt
            lock_insts: Dict[Tuple[str, int], Instruction] = {}
            covered: List[Tuple[str, Instruction, Instruction]] = []
            for inst in func.body:
                if isinstance(inst, LockInst):
                    open_locks.setdefault(inst.mutex, []).append(inst)
                elif isinstance(inst, UnlockInst):
                    stack = open_locks.get(inst.mutex)
                    if stack:
                        lock_inst = stack.pop()
                        covered.append((inst.mutex, lock_inst, inst))
            regions = [
                LockRegion(mutex, lock_inst, unlock_inst)
                for mutex, lock_inst, unlock_inst in covered
            ]
            for inst in func.body:
                enclosing = tuple(
                    r
                    for r in regions
                    if r.lock.label < inst.label < r.unlock.label
                )
                if enclosing:
                    self._regions_of[inst.label] = enclosing

    def regions_of(self, inst: Instruction) -> Tuple[LockRegion, ...]:
        """The critical sections enclosing ``inst`` (possibly empty)."""
        return self._regions_of.get(inst.label, ())

    def common_mutex_regions(
        self, a: Instruction, b: Instruction
    ) -> List[Tuple[LockRegion, LockRegion]]:
        """Pairs of *distinct* same-mutex regions enclosing ``a`` and ``b``."""
        out: List[Tuple[LockRegion, LockRegion]] = []
        for ra in self.regions_of(a):
            for rb in self.regions_of(b):
                if ra.mutex == rb.mutex and ra is not rb:
                    out.append((ra, rb))
        return out
