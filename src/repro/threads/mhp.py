"""May-happen-in-parallel (MHP) analysis and structural happens-before.

The paper (§6) uses an MHP analysis to prune load/store pairs that can
never interfere before running Alg. 2, and (§5.1) derives the
inter-thread part of the program order ``<P`` from fork/join semantics:

* everything in a child thread happens after the fork that created it;
* everything in a child thread happens before any statement following a
  matching join in an ancestor.

``lock``/``unlock`` are deliberately *not* used to refine MHP, matching
the paper ("the partial order constraints do not attempt to identify all
the program orders enforced by other synchronization semantics"); the
hooks are in place for the future-work extension.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir.instructions import ForkInst, Instruction, JoinInst
from ..ir.module import IRModule
from .callgraph import MAIN_THREAD, ThreadCallGraph

__all__ = ["MhpAnalysis"]


class MhpAnalysis:
    """Structural happens-before and MHP queries over a thread call graph."""

    def __init__(self, graph: ThreadCallGraph) -> None:
        self.graph = graph
        self.module = graph.module
        # tid -> (function name of fork site, fork label)
        self._fork_site: Dict[str, Tuple[str, int]] = {}
        # tid -> list of (function name, join label) joining it
        self._join_sites: Dict[str, List[Tuple[str, int]]] = {}
        self._index()

    def _index(self) -> None:
        for tid, thread in self.graph.threads.items():
            if thread.fork is not None:
                self._fork_site[tid] = (
                    self.module.function_of(thread.fork),
                    thread.fork.label,
                )
        # Match joins to threads by source-level thread name within the
        # functions of the parent thread.
        for func_name, func in self.module.functions.items():
            for inst in func.body:
                if isinstance(inst, JoinInst):
                    for tid, thread in self.graph.threads.items():
                        if thread.name_in_source == inst.thread:
                            self._join_sites.setdefault(tid, []).append(
                                (func_name, inst.label)
                            )

    # ----- happens-before -------------------------------------------------

    def happens_before(self, a: Instruction, b: Instruction) -> bool:
        """True when ``a`` structurally happens before ``b`` under *every*
        thread assignment (sound for use as a pruning relation)."""
        threads_a = self.graph.threads_of(a)
        threads_b = self.graph.threads_of(b)
        if not threads_a or not threads_b:
            return False
        return all(
            self._hb_under(a, ta, b, tb) for ta in threads_a for tb in threads_b
        )

    def _hb_under(self, a: Instruction, ta: str, b: Instruction, tb: str) -> bool:
        if ta == tb:
            func_a = self.module.function_of(a)
            func_b = self.module.function_of(b)
            if func_a == func_b:
                return a.label < b.label
            return False  # cross-function same-thread order unresolved here
        # a's thread is an ancestor of b's: a hb b iff a precedes the fork
        # (in the fork's function) on the ancestry chain.
        chain = self._fork_chain(tb)
        for parent_tid, fork_func, fork_label in chain:
            if parent_tid == ta:
                return (
                    self.module.function_of(a) == fork_func and a.label <= fork_label
                )
        # b's thread joined a's thread: a hb b iff a join of ta precedes b
        # in b's function and b's thread can execute that join.
        func_b = self.module.function_of(b)
        for join_func, join_label in self._join_sites.get(ta, ()):
            if (
                join_func == func_b
                and join_label < b.label
                and tb in self.graph.threads_of_function.get(join_func, ())
            ):
                return True
        return False

    def _fork_chain(self, tid: str) -> List[Tuple[str, str, int]]:
        """[(parent tid, fork function, fork label)] from tid up to main."""
        out: List[Tuple[str, str, int]] = []
        cur = tid
        while True:
            thread = self.graph.threads[cur]
            if thread.fork is None or thread.parent is None:
                break
            out.append(
                (thread.parent, self.module.function_of(thread.fork), thread.fork.label)
            )
            cur = thread.parent
        return out

    # ----- MHP --------------------------------------------------------------

    def may_happen_in_parallel(self, a: Instruction, b: Instruction) -> bool:
        """True when some thread assignment runs ``a`` and ``b`` in
        different threads with neither ordered before the other."""
        threads_a = self.graph.threads_of(a)
        threads_b = self.graph.threads_of(b)
        for ta in threads_a:
            for tb in threads_b:
                if ta == tb:
                    continue
                if not self._hb_under(a, ta, b, tb) and not self._hb_under(
                    b, tb, a, ta
                ):
                    return True
        return False
