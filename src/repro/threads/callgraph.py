"""Thread call graph construction (paper §4.1 / §6).

A *thread* corresponds to a fork site (plus the implicit main thread);
its call graph is the set of functions reachable from the thread's entry
function.  Fork and call targets through function pointers are resolved
with Steensgaard's analysis (paper §6), so the graph can be built before
any expensive pointer reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir.instructions import CallInst, ForkInst, Instruction, JoinInst
from ..ir.module import IRModule
from ..ir.values import FunctionRef, Variable
from ..pointer.steensgaard import SteensgaardResult, steensgaard

__all__ = ["Thread", "ThreadCallGraph", "build_thread_call_graph", "MAIN_THREAD"]

MAIN_THREAD = "main"


@dataclass(eq=False)
class Thread:
    """One thread of the bounded program.

    ``tid`` is ``main`` or ``t@<fork label>``; ``fork`` is the creating
    instruction (None for main); ``parent`` the creating thread's tid.
    ``functions`` is the set of function names the thread may execute.
    """

    tid: str
    entry: str
    fork: Optional[ForkInst] = None
    parent: Optional[str] = None
    name_in_source: Optional[str] = None
    functions: Set[str] = field(default_factory=set)

    def __repr__(self) -> str:
        return f"<Thread {self.tid} entry={self.entry}>"


class ThreadCallGraph:
    """Threads, their function sets, and call edges of the whole program."""

    def __init__(self, module: IRModule, pointsto: SteensgaardResult) -> None:
        self.module = module
        self.pointsto = pointsto
        self.threads: Dict[str, Thread] = {}
        # function -> set of tids that may execute it
        self.threads_of_function: Dict[str, Set[str]] = {}
        # caller function -> set of (callsite label, callee function)
        self.call_edges: Dict[str, Set[Tuple[int, str]]] = {}
        # join instruction -> tids it joins (by source thread name, scoped
        # to the forking function)
        self.joins_of: Dict[int, Set[str]] = {}

    # ----- queries ---------------------------------------------------------

    def thread(self, tid: str) -> Thread:
        return self.threads[tid]

    def tids(self) -> List[str]:
        return list(self.threads)

    def threads_of(self, inst: Instruction) -> FrozenSet[str]:
        """The threads that may execute ``inst``."""
        func = self.module.function_of(inst)
        return frozenset(self.threads_of_function.get(func, ()))

    def callees_at(self, inst: Instruction) -> FrozenSet[str]:
        """Possible callee functions at a call or fork instruction."""
        names = self.pointsto.callees(inst.callee)
        return frozenset(n for n in names if n in self.module.functions)

    def ancestors(self, tid: str) -> List[str]:
        """Chain of parent tids from ``tid`` (exclusive) up to main."""
        out = []
        cur = self.threads[tid].parent
        while cur is not None:
            out.append(cur)
            cur = self.threads[cur].parent
        return out

    def reverse_topological_functions(self) -> List[str]:
        """Functions ordered callees-first (cycles broken arbitrarily) —
        the bottom-up order of the paper's Alg. 1."""
        visited: Set[str] = set()
        order: List[str] = []

        def visit(name: str, stack: Set[str]) -> None:
            if name in visited or name in stack:
                return
            stack.add(name)
            for _label, callee in sorted(self.call_edges.get(name, ())):
                visit(callee, stack)
            stack.discard(name)
            visited.add(name)
            order.append(name)

        for name in self.module.functions:
            visit(name, set())
        return order


def build_thread_call_graph(
    module: IRModule, pointsto: Optional[SteensgaardResult] = None
) -> ThreadCallGraph:
    """Discover threads (fork sites) and per-thread function sets.

    Newly discovered fork sites inside forked code spawn further threads,
    so the construction iterates worklist-style until closure.  Loop
    unrolling happened before lowering, so the number of fork sites — and
    hence threads — is finite (paper §3.1).
    """
    if pointsto is None:
        pointsto = steensgaard(module)
    graph = ThreadCallGraph(module, pointsto)

    main = Thread(tid=MAIN_THREAD, entry=module.entry)
    graph.threads[MAIN_THREAD] = main

    worklist: List[Thread] = [main]
    while worklist:
        thread = worklist.pop()
        reachable = _reachable_functions(graph, thread.entry)
        thread.functions = reachable
        for func_name in reachable:
            graph.threads_of_function.setdefault(func_name, set()).add(thread.tid)
        for func_name in reachable:
            func = module.functions.get(func_name)
            if func is None:
                continue
            for inst in func.body:
                if isinstance(inst, ForkInst):
                    callees = sorted(graph.callees_at(inst))
                    for callee in callees:
                        # One thread per (fork site, resolved target).
                        tid = (
                            f"t@{inst.label}"
                            if len(callees) == 1
                            else f"t@{inst.label}:{callee}"
                        )
                        if tid in graph.threads:
                            continue
                        child = Thread(
                            tid=tid,
                            entry=callee,
                            fork=inst,
                            parent=thread.tid,
                            name_in_source=inst.thread,
                        )
                        graph.threads[tid] = child
                        worklist.append(child)
                elif isinstance(inst, JoinInst):
                    graph.joins_of.setdefault(inst.label, set()).add(inst.thread)
    return graph


def _reachable_functions(graph: ThreadCallGraph, entry: str) -> Set[str]:
    module = graph.module
    seen: Set[str] = set()
    stack = [entry]
    while stack:
        name = stack.pop()
        if name in seen or name not in module.functions:
            continue
        seen.add(name)
        for inst in module.functions[name].body:
            if isinstance(inst, CallInst):
                for callee in graph.callees_at(inst):
                    graph.call_edges.setdefault(name, set()).add((inst.label, callee))
                    if callee not in seen:
                        stack.append(callee)
    return seen
