"""Condition-variable signal→wait ordering — synchronization plug-in (2).

Like :mod:`repro.threads.locks`, this extends the paper's Φ_po (Eq. 4)
with an extra synchronization semantics the published Canary leaves to
plug-ins (§5.1): a ``wait(c)`` statement cannot execute before *some*
``signal(c)`` has executed.  The encoding added by
:meth:`~repro.detection.partial_order.OrderConstraintBuilder.signal_wait_order`
is the disjunction over the condition's signal sites

    ⋁_{s ∈ signals(c)}  O_s < O_w

(restricted to signals not already ordered after the wait), which the
difference-logic core decides natively.

The latch semantics — once signalled, every current and future wait
proceeds — matches the concrete interpreter's replay semantics, so
witness schedules stay executable.

Structurally, the analysis also answers the *extended happens-before*
query used by the race/atomicity checkers to discard protected pairs
before any formula is built: ``a`` is ordered before ``b`` when some
signal/wait pair on one condition has ``a ≤hb signal`` and ``wait ≤hb b``
— valid when every wait of that condition has a unique signalling
source, which is exactly the single-signal publication idiom the corpus
bait programs exercise.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.instructions import Instruction, SignalInst, WaitInst
from ..ir.module import IRModule
from .mhp import MhpAnalysis

__all__ = ["CondVarAnalysis"]


class CondVarAnalysis:
    """Per-condition signal/wait site index plus the extended-hb query."""

    def __init__(self, module: IRModule, mhp: MhpAnalysis) -> None:
        self.module = module
        self.mhp = mhp
        self._signals: Dict[str, List[SignalInst]] = {}
        self._waits: Dict[str, List[WaitInst]] = {}
        for inst in module.all_instructions():
            if isinstance(inst, SignalInst):
                self._signals.setdefault(inst.cond, []).append(inst)
            elif isinstance(inst, WaitInst):
                self._waits.setdefault(inst.cond, []).append(inst)

    @property
    def conditions(self) -> Tuple[str, ...]:
        names = set(self._signals) | set(self._waits)
        return tuple(sorted(names))

    def signals_of(self, cond: str) -> Tuple[SignalInst, ...]:
        return tuple(self._signals.get(cond, ()))

    def waits_of(self, cond: str) -> Tuple[WaitInst, ...]:
        return tuple(self._waits.get(cond, ()))

    def has_sync(self) -> bool:
        """Does the module use condition variables at all?"""
        return bool(self._signals and self._waits)

    def ordered_before(self, a: Instruction, b: Instruction) -> bool:
        """Extended happens-before: is ``a`` ordered before ``b`` through a
        signal→wait edge (or a chain ``a ≤hb signal ; wait ≤hb b``)?

        Sound only when the condition has a single signal site (any wait
        must have observed *that* signal); multi-signal conditions are
        left to the solver-side encoding.
        """
        hb = self.mhp.happens_before
        for cond, waits in self._waits.items():
            signals = self._signals.get(cond, ())
            if len(signals) != 1:
                continue
            s = signals[0]
            if not (a is s or hb(a, s)):
                continue
            for w in waits:
                if w is b or hb(w, b):
                    return True
        return False

    def sync_free(self, a: Instruction, b: Instruction) -> bool:
        """Neither direction of the pair is ordered by a signal→wait edge."""
        return not (self.ordered_before(a, b) or self.ordered_before(b, a))
