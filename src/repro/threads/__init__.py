"""Thread structure: thread call graph, MHP, happens-before.

Escape analysis lives with the interference analysis in
:mod:`repro.vfg.interference` because it operates on the value-flow graph
(paper Alg. 2 lines 12-23).
"""

from .callgraph import MAIN_THREAD, Thread, ThreadCallGraph, build_thread_call_graph
from .condvars import CondVarAnalysis
from .locks import LockAnalysis, LockRegion
from .mhp import MhpAnalysis

__all__ = [
    "MAIN_THREAD",
    "Thread",
    "ThreadCallGraph",
    "build_thread_call_graph",
    "CondVarAnalysis",
    "LockAnalysis",
    "LockRegion",
    "MhpAnalysis",
]
