"""Where does Canary's precision come from?

Runs the checkers with suppression tracking over several subjects and
attributes every solver-refuted candidate to its reason:

* ``guard-contradiction`` — path conditions alone are unsatisfiable
  (the §2/Fig. 2 class; includes the guard baits);
* ``order-violation`` — guards are consistent but Φ_ls ∧ Φ_po plus the
  checker's order requirement admit no interleaving (the §3.2/Fig. 5
  class; includes the order baits).

Both classes must be non-empty on the generated corpus — i.e. both the
path-sensitivity and the order-encoding machinery earn their keep.
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Canary

SUBJECT_NAMES = ["lrzip", "coturn", "transmission"]


@pytest.fixture(scope="module")
def suppression_data(prepared):
    data = {}
    config = AnalysisConfig(collect_suppressed=True, prune_guards=False)
    for name in SUBJECT_NAMES:
        module, _truth, _lines = prepared(name)
        report = Canary(config).analyze_module(module)
        data[name] = report
    return data


def test_both_refutation_classes_present(benchmark, suppression_data):
    def tally():
        counts = {"guard-contradiction": 0, "order-violation": 0}
        for report in suppression_data.values():
            for s in report.suppressed:
                counts[s.reason] = counts.get(s.reason, 0) + 1
        return counts

    counts = benchmark(tally)
    print(f"\nrefuted candidates by reason: {counts}")
    assert counts["guard-contradiction"] >= 1
    assert counts["order-violation"] >= 1


def test_verdicts_unchanged_by_tracking(benchmark, suppression_data, prepared):
    """Suppression tracking is observability only: same reports."""

    def verify():
        out = True
        for name in SUBJECT_NAMES:
            module, _truth, _lines = prepared(name)
            plain = Canary().analyze_module(module)
            tracked = suppression_data[name]
            out &= plain.num_reports == tracked.num_reports
        return out

    assert benchmark(verify)


def test_suppressed_not_double_counted(benchmark, suppression_data):
    def keys():
        out = []
        for report in suppression_data.values():
            out.extend(
                (s.kind, s.source.label, s.sink.label) for s in report.suppressed
            )
        return out

    all_keys = benchmark(keys)
    assert len(all_keys) == len(set(all_keys))
