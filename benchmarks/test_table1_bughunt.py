"""Table 1 — results of bug hunting.

Paper claims (totals row): Canary reports 15 inter-thread use-after-free
findings with 4 false positives (26.67% FP rate); Saber and Fsam emit
orders of magnitude more warnings (~9,896 and ~586 across the subjects
they finish) at ~100% FP rates, and hit the time budget on the larger
subjects (Saber on 9, Fsam on 15 of 20).

The generated corpus encodes the per-subject ground truth from the
Canary columns of Table 1, so the totals must reproduce exactly; the
baseline columns must reproduce in *shape* (orders of magnitude more
reports, near-total FP rates, NA on large subjects).
"""

from __future__ import annotations

import pytest

from repro.bench import render_table1


def test_table1_render(benchmark, all_runs):
    table = benchmark(lambda: render_table1(all_runs))
    print("\n" + table)


def test_canary_totals_match_paper(benchmark, all_runs):
    totals = benchmark(
        lambda: (
            sum(r.tools["canary"].reports for r in all_runs),
            sum(r.tools["canary"].false_positives for r in all_runs),
        )
    )
    reports, fps = totals
    assert reports == 15, "paper: fifteen inter-thread UAF reports"
    assert fps == 4, "paper: 26.67% FP rate = 4 of 15"


def test_canary_finds_every_injected_bug(benchmark, all_runs):
    tps = benchmark(
        lambda: {r.subject.name: r.tools["canary"].true_positives for r in all_runs}
    )
    for run in all_runs:
        assert tps[run.subject.name] == run.subject.real_bugs


def test_baselines_report_orders_of_magnitude_more(benchmark, all_runs):
    def count():
        saber = sum(
            r.tools["saber"].reports or 0
            for r in all_runs
            if not r.tools["saber"].timed_out
        )
        canary = sum(r.tools["canary"].reports for r in all_runs)
        return saber, canary

    saber_reports, canary_reports = benchmark(count)
    assert saber_reports > 20 * canary_reports


def test_baseline_fp_rates_high(benchmark, all_runs):
    def rates():
        out = []
        for r in all_runs:
            tool = r.tools["saber"]
            if not tool.timed_out and tool.reports:
                out.append(tool.fp_rate)
        return out

    fp_rates = benchmark(rates)
    assert fp_rates, "Saber must complete at least the small subjects"
    # Paper: 96.8%-100% on every completed subject.
    assert min(fp_rates) >= 80.0
    assert sum(fp_rates) / len(fp_rates) >= 95.0


def test_na_pattern_matches_paper(benchmark, all_runs):
    """Fsam exhausts the budget before Saber; both only on larger subjects."""

    def na_sets():
        saber_na = [r.subject.index for r in all_runs if r.tools["saber"].timed_out]
        fsam_na = [r.subject.index for r in all_runs if r.tools["fsam"].timed_out]
        return saber_na, fsam_na

    saber_na, fsam_na = benchmark(na_sets)
    assert set(saber_na) <= set(fsam_na), "whatever kills Saber kills Fsam"
    # NA happens on the *larger* subjects: every NA subject is larger than
    # every subject both tools completed.
    completed = [
        r.lines
        for r in all_runs
        if not r.tools["saber"].timed_out and not r.tools["fsam"].timed_out
    ]
    na_lines = [r.lines for r in all_runs if r.tools["fsam"].timed_out]
    if na_lines and completed:
        assert min(na_lines) >= max(completed) * 0.5
