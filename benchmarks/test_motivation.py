"""The paper's §1 motivation, quantified.

"[Dynamic detection] depends on intricate sequences of low-probability
concurrent events … the number of thread interleavings grows
exponentially" — here measured: random-schedule testing surfaces the
injected inter-thread UAFs in only a fraction of trials (and needs
luck with the symbolic inputs too), while Canary's static verdict is
deterministic and immediate.
"""

from __future__ import annotations

import pytest

from repro import Canary
from repro.interp import dynamic_test

TRIALS = 150


def test_dynamic_hit_rate_vs_static(benchmark, prepared):
    module, truth, _lines = prepared("lrzip")  # two real bugs injected
    result = benchmark.pedantic(
        lambda: dynamic_test(module, trials=TRIALS, seed=3), rounds=1, iterations=1
    )
    static = Canary().analyze_module(module)
    rate = result.hit_rate("use-after-free")
    print(
        f"\nrandom testing: UAF in {result.hits.get('use-after-free', 0)}"
        f"/{TRIALS} schedules ({100 * rate:.1f}%); "
        f"Canary: {static.num_reports} report(s), deterministic"
    )
    # The motivation holds when the dynamic tool needs luck…
    assert rate < 0.9
    # …and the static tool does not.
    assert static.num_reports == 2


def test_dynamic_misses_are_not_static_fps(benchmark, prepared):
    """Whatever dynamic testing DOES find, the static tool also reports —
    random testing never contradicts Canary on this corpus."""
    module, truth, _lines = prepared("lwan")
    result = benchmark.pedantic(
        lambda: dynamic_test(module, trials=80, seed=7), rounds=1, iterations=1
    )
    static_kinds = {
        b.kind for b in Canary().analyze_module(module).bugs
    }
    found = {k for k in result.kinds_found() if k != "info-leak"}
    # dynamic testing with random environments may trip baits whose
    # conditions Canary proved contradictory *per execution* — it cannot:
    # each trial uses one consistent environment, so contradictory guards
    # never co-fire.  Hence dynamic ⊆ static for UAF here.
    assert found <= (static_kinds | {"double-free", "null-deref"})
