"""Witness-confirmation experiment (extends the paper's §7.3).

The paper confirmed its 18 reports manually with the projects'
developers.  Here confirmation is mechanical: every report's SMT witness
is replayed in the concrete interpreter.  On the Table-1 corpus all 15
reports replay to runtime violations — including the 4 "false
positives", which is the interesting part: those patterns *are* bugs of
the program text (free on an error path racing a use on the success
path); they are false positives only w.r.t. an external invariant
("error and success never co-occur at runtime") that no static or
dynamic tool can see.  Replay validates against program semantics; the
FP label comes from developer ground truth.
"""

from __future__ import annotations

import pytest

from repro import Canary
from repro.bench import SUBJECTS, prepare_subject
from repro.interp import confirm_all


@pytest.fixture(scope="module")
def confirmations(profile):
    out = []
    for subject in SUBJECTS:
        module, truth, _lines = prepare_subject(subject, profile)
        report = Canary().analyze_module(module)
        results = confirm_all(module, report.bugs)
        for result in results:
            is_tp = (
                truth.classify_free_site(module.function_of(result.bug.source))
                == "tp"
            )
            out.append((subject.name, is_tp, result.confirmed))
    return out


def test_every_true_positive_confirms(benchmark, confirmations):
    tps = benchmark(lambda: [c for c in confirmations if c[1]])
    assert tps, "corpus must contain true positives"
    assert all(confirmed for _n, _tp, confirmed in tps)


def test_confirmation_rate_reported(benchmark, confirmations):
    def rate():
        total = len(confirmations)
        confirmed = sum(1 for _n, _tp, c in confirmations if c)
        return total, confirmed

    total, confirmed = benchmark(rate)
    print(f"\nwitness replay: {confirmed}/{total} reports confirmed")
    assert total == 15  # the Table-1 report count
    assert confirmed >= 11  # at least every true positive


def test_replay_cost_one_subject(benchmark, prepared):
    module, _truth, _lines = prepared("lrzip")
    report = Canary().analyze_module(module)
    results = benchmark(lambda: confirm_all(module, report.bugs))
    assert all(r.confirmed for r in results)
