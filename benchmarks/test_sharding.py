"""Benchmark for the per-function summary layer: serial (summaries off,
the whole-VFG fixpoint) vs the sharded summary path at 2/4/8 workers on
the scaled generator subject (hundreds of functions, one thread per
group, mixed escape patterns).

The measured quantity is the wall time of the phases the summary layer
rewrites — ``summaries`` + ``interference`` + every ``detect:*`` pass —
not end-to-end wall clock: parse/lower/pointer/dataflow are identical in
every variant and would only dilute the signal.  On a single-core CI
host the win is dominated by the algorithmic change (site-indexed
candidate lookup and demand-loaded shards instead of per-object
whole-list scans), so the speedup must hold at *every* worker count.

Exactness is hard-asserted: identical bug keys across serial and every
worker count/backend.  Results land in ``BENCH_sharding.json`` under the
CI regression gate.

Two further rows cover the PR-8 layers: per-sink detection sharding on a
detection-heavy subject (the speedup bar is core-conditional — a
single-core host can only match the serial phase), and the disk-warm
summary namespace (a fresh driver rehydrating 720/721 function
summaries from disk after an edit).
"""

from __future__ import annotations

import os
import pathlib
import sys
import time

from repro import AnalysisConfig, Canary
from repro.bench import write_bench_results

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tests"))
from fuzz_gen import detection_scaled_program, scaled_program  # noqa: E402

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "BENCH_sharding.json"

SUBJECT = scaled_program(n_groups=120, helpers_per_group=2)

#: the detection-heavy companion at the same module size (721 functions):
#: every writer republishes-and-frees on every slot, so the detect phase
#: (192 SMT-checked candidates) dominates instead of the summary phase.
DETECT_SUBJECT = detection_scaled_program(n_threads=64, n_slots=3, pad_functions=656)


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1

_results: dict = {}


def _record(name: str, **data) -> None:
    _results[name] = data
    write_bench_results(RESULTS, _results, suite="sharding")


def _phase_seconds(report) -> float:
    total = 0.0
    for row in report.pass_statistics:
        name = row["name"]
        if name in ("summaries", "interference") or name.startswith("detect:"):
            total += row["seconds"]
    return total


def _run(**overrides):
    overrides.setdefault("use_cache", False)
    t0 = time.perf_counter()
    report = Canary(AnalysisConfig(**overrides)).analyze_source(SUBJECT)
    wall = time.perf_counter() - t0
    return report, wall


def _keys(report):
    return sorted(b.key for b in report.bugs)


def test_sharded_summaries_vs_serial():
    serial, serial_wall = _run(summaries=False)
    serial_phases = _phase_seconds(serial)
    assert len(_keys(serial)) == 2  # the generator's deterministic bugs

    variants = {}
    for workers in (2, 4, 8):
        report, wall = _run(summary_workers=workers, solver_backend="process")
        assert _keys(report) == _keys(serial), f"{workers} workers diverged"
        assert report.vfg_summary == serial.vfg_summary
        variants[workers] = (report, wall, _phase_seconds(report))

    report8, _wall8, phases8 = variants[8]
    speedup = serial_phases / max(phases8, 1e-9)
    # The acceptance bar: the rewritten phases must be at least 3x
    # faster than the whole-VFG path on the scaled subject.
    assert speedup >= 3.0, (
        f"summaries+interference+detection speedup {speedup:.2f}x"
        f" ({serial_phases:.3f}s -> {phases8:.3f}s)"
    )
    view_stats = report8.bundle.summary_index.view.statistics()
    _record(
        "sharding_scaled",
        functions=len(report8.bundle.summary_index.summaries),
        bug_keys=len(_keys(serial)),
        escaped_objects=serial.vfg_summary["escaped_objects"],
        interference_edges=serial.vfg_summary["interference_edges"],
        shards_total=view_stats["shards_total"],
        serial_phase_s=round(serial_phases, 4),
        workers2_phase_s=round(variants[2][2], 4),
        workers4_phase_s=round(variants[4][2], 4),
        workers8_phase_s=round(phases8, 4),
        serial_wall_s=round(serial_wall, 4),
        workers8_wall_s=round(variants[8][1], 4),
        speedup=round(speedup, 2),
    )


def test_worker_scaling_overhead_bounded():
    """Sharding must not cost more than it saves at any worker count:
    every variant's phase time stays below the serial baseline."""
    serial, _ = _run(summaries=False)
    serial_phases = _phase_seconds(serial)
    rows = {}
    for workers, backend in ((1, "process"), (8, "thread")):
        report, _wall = _run(summary_workers=workers, solver_backend=backend)
        assert _keys(report) == _keys(serial)
        phases = _phase_seconds(report)
        assert phases <= serial_phases, (
            f"{workers} workers ({backend}): {phases:.3f}s"
            f" vs serial {serial_phases:.3f}s"
        )
        rows[f"{backend}{workers}_phase_s"] = round(phases, 4)
    _record(
        "sharding_overhead",
        serial_phase_s=round(serial_phases, 4),
        **rows,
    )


def _detect_seconds(report) -> float:
    return sum(
        row["seconds"]
        for row in report.pass_statistics
        if row["name"].startswith("detect:")
    )


def test_detection_sharding_vs_serial():
    """Per-sink detection sharding on the detection-heavy 721-function
    subject: exactness (bug keys, witness paths, search statistics) is
    hard-asserted at every worker count; the ≥2x speedup bar applies
    only where the hardware can express it (≥4 usable cores — on a
    starved CI host the assertion degrades to bounded overhead, since a
    1-core pool cannot beat the serial phase, only match it)."""

    def run(**overrides):
        overrides.setdefault("use_cache", False)
        return Canary(AnalysisConfig(**overrides)).analyze_source(DETECT_SUBJECT)

    serial = run()
    serial_detect = _detect_seconds(serial)
    serial_keys = sorted(b.key for b in serial.bugs)
    assert serial_keys  # the generator's deterministic UAF matrix

    variants = {}
    for workers in (2, 4, 8):
        rep = run(detect_workers=workers, solver_backend="process")
        assert sorted(b.key for b in rep.bugs) == serial_keys, (
            f"{workers} detect workers diverged"
        )
        assert sorted((b.key, tuple(b.path)) for b in rep.bugs) == sorted(
            (b.key, tuple(b.path)) for b in serial.bugs
        )
        assert rep.search_statistics == serial.search_statistics
        variants[workers] = _detect_seconds(rep)

    best = min(variants.values())
    speedup = serial_detect / max(best, 1e-9)
    cores = _cores()
    if cores >= 4:
        assert speedup >= 2.0, (
            f"detection sharding speedup {speedup:.2f}x on {cores} cores"
            f" ({serial_detect:.3f}s -> {best:.3f}s)"
        )
    else:
        # Starved host: every worker repeats the (unrestricted) DFS and
        # the solver processes time-slice one core, so sharding cannot
        # beat the serial phase here — the bar is bounded overhead, not
        # speedup.
        assert best <= serial_detect * 2.5, (
            f"sharded detect {best:.3f}s vs serial {serial_detect:.3f}s"
            f" on {cores} core(s)"
        )
    _record(
        "detection_sharding",
        bug_keys=len(serial_keys),
        serial_detect_s=round(serial_detect, 4),
        workers2_detect_s=round(variants[2], 4),
        workers4_detect_s=round(variants[4], 4),
        workers8_detect_s=round(variants[8], 4),
        speedup=round(speedup, 2),
    )


def test_disk_warm_summaries(tmp_path):
    """The portable disk summary namespace on the 721-function subject:
    a fresh driver analyzing an edited source rehydrates 720/721
    summaries from disk instead of refingerprinting the module."""

    def summaries_seconds(report) -> float:
        return sum(
            row["seconds"]
            for row in report.pass_statistics
            if row["name"] == "summaries"
        )

    edited = SUBJECT.replace("void main() {", "void main() {\n    int zz = 1 + 2;")
    cache = dict(cache_dir=str(tmp_path), summary_cache_dir=str(tmp_path))
    cold = Canary(AnalysisConfig(**cache)).analyze_source(SUBJECT)
    cold_s = summaries_seconds(cold)
    # Fresh driver (new in-memory store — a new process in CI terms),
    # edited source: the run digest misses but the summary namespace hits.
    warm = Canary(AnalysisConfig(**cache)).analyze_source(edited)
    warm_s = summaries_seconds(warm)
    snap = warm.metrics.snapshot()
    assert snap["summary.disk_hits"] == 720
    assert snap["summary.computed"] == 1
    # Exactness: the disk-warm report equals a cold cacheless run of the
    # same edited source (the edit shifts labels, so the unedited cold
    # run is not the reference).
    ref = Canary(AnalysisConfig(use_cache=False)).analyze_source(edited)
    assert sorted(b.key for b in warm.bugs) == sorted(b.key for b in ref.bugs)
    assert warm.vfg_summary == ref.vfg_summary
    _record(
        "disk_warm_summaries",
        functions=721,
        disk_hits=720,
        recomputed=1,
        cold_summaries_s=round(cold_s, 4),
        diskwarm_summaries_s=round(warm_s, 4),
        speedup=round(cold_s / max(warm_s, 1e-9), 2),
    )
