"""Benchmark for the per-function summary layer: serial (summaries off,
the whole-VFG fixpoint) vs the sharded summary path at 2/4/8 workers on
the scaled generator subject (hundreds of functions, one thread per
group, mixed escape patterns).

The measured quantity is the wall time of the phases the summary layer
rewrites — ``summaries`` + ``interference`` + every ``detect:*`` pass —
not end-to-end wall clock: parse/lower/pointer/dataflow are identical in
every variant and would only dilute the signal.  On a single-core CI
host the win is dominated by the algorithmic change (site-indexed
candidate lookup and demand-loaded shards instead of per-object
whole-list scans), so the speedup must hold at *every* worker count.

Exactness is hard-asserted: identical bug keys across serial and every
worker count/backend.  Results land in ``BENCH_sharding.json`` under the
CI regression gate.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro import AnalysisConfig, Canary
from repro.bench import write_bench_results

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tests"))
from fuzz_gen import scaled_program  # noqa: E402

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "BENCH_sharding.json"

SUBJECT = scaled_program(n_groups=120, helpers_per_group=2)

_results: dict = {}


def _record(name: str, **data) -> None:
    _results[name] = data
    write_bench_results(RESULTS, _results, suite="sharding")


def _phase_seconds(report) -> float:
    total = 0.0
    for row in report.pass_statistics:
        name = row["name"]
        if name in ("summaries", "interference") or name.startswith("detect:"):
            total += row["seconds"]
    return total


def _run(**overrides):
    overrides.setdefault("use_cache", False)
    t0 = time.perf_counter()
    report = Canary(AnalysisConfig(**overrides)).analyze_source(SUBJECT)
    wall = time.perf_counter() - t0
    return report, wall


def _keys(report):
    return sorted(b.key for b in report.bugs)


def test_sharded_summaries_vs_serial():
    serial, serial_wall = _run(summaries=False)
    serial_phases = _phase_seconds(serial)
    assert len(_keys(serial)) == 2  # the generator's deterministic bugs

    variants = {}
    for workers in (2, 4, 8):
        report, wall = _run(summary_workers=workers, solver_backend="process")
        assert _keys(report) == _keys(serial), f"{workers} workers diverged"
        assert report.vfg_summary == serial.vfg_summary
        variants[workers] = (report, wall, _phase_seconds(report))

    report8, _wall8, phases8 = variants[8]
    speedup = serial_phases / max(phases8, 1e-9)
    # The acceptance bar: the rewritten phases must be at least 3x
    # faster than the whole-VFG path on the scaled subject.
    assert speedup >= 3.0, (
        f"summaries+interference+detection speedup {speedup:.2f}x"
        f" ({serial_phases:.3f}s -> {phases8:.3f}s)"
    )
    view_stats = report8.bundle.summary_index.view.statistics()
    _record(
        "sharding_scaled",
        functions=len(report8.bundle.summary_index.summaries),
        bug_keys=len(_keys(serial)),
        escaped_objects=serial.vfg_summary["escaped_objects"],
        interference_edges=serial.vfg_summary["interference_edges"],
        shards_total=view_stats["shards_total"],
        serial_phase_s=round(serial_phases, 4),
        workers2_phase_s=round(variants[2][2], 4),
        workers4_phase_s=round(variants[4][2], 4),
        workers8_phase_s=round(phases8, 4),
        serial_wall_s=round(serial_wall, 4),
        workers8_wall_s=round(variants[8][1], 4),
        speedup=round(speedup, 2),
    )


def test_worker_scaling_overhead_bounded():
    """Sharding must not cost more than it saves at any worker count:
    every variant's phase time stays below the serial baseline."""
    serial, _ = _run(summaries=False)
    serial_phases = _phase_seconds(serial)
    rows = {}
    for workers, backend in ((1, "process"), (8, "thread")):
        report, _wall = _run(summary_workers=workers, solver_backend=backend)
        assert _keys(report) == _keys(serial)
        phases = _phase_seconds(report)
        assert phases <= serial_phases, (
            f"{workers} workers ({backend}): {phases:.3f}s"
            f" vs serial {serial_phases:.3f}s"
        )
        rows[f"{backend}{workers}_phase_s"] = round(phases, 4)
    _record(
        "sharding_overhead",
        serial_phase_s=round(serial_phases, 4),
        **rows,
    )
