"""Fig. 7b — VFG construction memory: Saber vs Fsam vs Canary.

Paper claims: Canary needs significantly less memory; on larger
subjects Saber needs ~130 GB more and Fsam ~200 GB more (and still
fails).  Here the proxy is Python-heap peak (tracemalloc).
"""

from __future__ import annotations

import pytest

from repro.baselines import FsamBaseline, SaberBaseline
from repro.bench import measure, render_fig7_memory
from repro.vfg import build_vfg

SUBJECT_NAMES = ["coturn", "transmission", "redis"]


@pytest.mark.parametrize("name", SUBJECT_NAMES)
def test_memory_per_tool(benchmark, prepared, name):
    """Measure the three tools' peak heap on one subject (one round —
    tracemalloc dominates timing, so the numbers live in extra_info)."""
    module, _truth, lines = prepared(name)

    def run_all_three():
        canary = measure(lambda: build_vfg(module))
        saber = measure(lambda: SaberBaseline().build_vfg(module))
        fsam = measure(lambda: FsamBaseline().build_vfg(module))
        return canary.peak_mb, saber.peak_mb, fsam.peak_mb

    canary_mb, saber_mb, fsam_mb = benchmark.pedantic(
        run_all_three, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        lines=lines,
        canary_mb=round(canary_mb, 2),
        saber_mb=round(saber_mb, 2),
        fsam_mb=round(fsam_mb, 2),
    )
    # Exhaustive flow-sensitive snapshots cost the most memory.
    assert fsam_mb >= canary_mb


def test_fig7b_shape_and_render(benchmark, all_runs):
    table = benchmark(lambda: render_fig7_memory(all_runs))
    print("\n" + table)
    # On every subject all three completed, Fsam uses the most memory.
    for run in all_runs:
        saber, fsam, canary = (
            run.tools["saber"],
            run.tools["fsam"],
            run.tools["canary"],
        )
        if saber.timed_out or fsam.timed_out:
            continue
        assert fsam.peak_mb >= canary.peak_mb * 0.5  # never wildly below
