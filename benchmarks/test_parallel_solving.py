"""Benchmarks for the parallel realizability engine (paper §5.2).

The workload is a corpus-style MiniCC program scaled until path queries
are genuinely expensive: ``n`` forked workers all publish-and-free into
one shared slot, and ``k`` readers dereference it, so every load edge
drags ``n`` interfering stores into Φ_ls and the batch holds ``n × k``
candidates.

Two claims are pinned:

* a batch run on the ``process`` backend (with the verdict cache and
  in-batch deduplication) is wall-clock no slower than the v1 engine's
  serial per-query loop on a repeated-query workload, and
* the cache hit counters are nonzero on such workloads.

The repeated-query workload models what DFI calls reuse of solved
sub-queries: overlapping batches (re-checks, checkers sharing path
queries) hand the engine the same Φ_all many times.
"""

from __future__ import annotations

import time

from repro import AnalysisConfig, Canary
from repro.detection import PathQuery, RealizabilityChecker, ValueFlowPath, VerdictCache
from repro.frontend import parse_program
from repro.lowering import lower_program
from repro.vfg import build_vfg


def _shared_slot_program(n_workers: int, n_readers: int) -> str:
    lines = ["void main() {", "    int** slot = malloc();", "    int* init = malloc();", "    *slot = init;"]
    for i in range(n_workers):
        lines.append(f"    fork(t{i}, worker{i}, slot);")
    for j in range(n_readers):
        lines.append(f"    int* v{j} = *slot;")
        lines.append(f"    print(*v{j});")
    lines.append("}")
    for i in range(n_workers):
        lines.append(
            f"void worker{i}(int** s) {{ int* b{i} = malloc(); *s = b{i}; free(b{i}); }}"
        )
    return "\n".join(lines)


def _interference_queries(bundle):
    return [
        PathQuery(
            path=ValueFlowPath(origin=edge.src, edges=[edge]),
            source_inst=None,
            sink_inst=None,
        )
        for edge in bundle.vfg.interference_edges()
    ]


def test_process_batch_beats_serial_on_repeated_queries():
    """v2 batch engine vs. v1 serial loop on a repeated-query workload."""
    text = _shared_slot_program(n_workers=24, n_readers=3)
    bundle = build_vfg(lower_program(parse_program(text)))
    queries = _interference_queries(bundle) * 3  # overlapping batches
    assert len(queries) >= 24, "workload must be multi-candidate"

    # v1: serial per-query loop, no cache.
    v1 = RealizabilityChecker(bundle, cache=None)
    t0 = time.perf_counter()
    serial_results = [v1.check(q) for q in queries]
    serial_wall = time.perf_counter() - t0

    # v2: process-pool batch with the verdict cache.
    v2 = RealizabilityChecker(bundle, cache=VerdictCache(), backend="process")
    t0 = time.perf_counter()
    batch_results = v2.check_many(queries, parallel=True, max_workers=4)
    batch_wall = time.perf_counter() - t0

    assert [r.verdict for r in batch_results] == [r.verdict for r in serial_results]
    assert v2.statistics["cache_hits"] > 0, "repeated queries must hit the cache"
    assert batch_wall <= serial_wall, (
        f"process batch {batch_wall:.3f}s slower than serial {serial_wall:.3f}s"
    )


def test_full_pipeline_parallel_not_pathological():
    """End-to-end --parallel must stay within a small factor of serial even
    on single-core hosts (pool startup is the only extra cost), and must
    report the identical bug keys."""
    text = _shared_slot_program(n_workers=6, n_readers=2)
    serial_cfg = AnalysisConfig(verdict_cache=False)
    parallel_cfg = AnalysisConfig(parallel_solving=True, solver_backend="process")

    t0 = time.perf_counter()
    serial = Canary(serial_cfg).analyze_source(text)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = Canary(parallel_cfg).analyze_source(text)
    parallel_wall = time.perf_counter() - t0

    assert sorted(b.key for b in serial.bugs) == sorted(b.key for b in parallel.bugs)
    assert parallel_wall <= max(serial_wall * 3.0, serial_wall + 0.25)


def test_verdict_cache_speeds_repeat_analysis(benchmark):
    """pytest-benchmark target: solving with the cache on a workload whose
    queries repeat (two checker passes over the same bundle)."""
    text = _shared_slot_program(n_workers=6, n_readers=2)
    bundle = build_vfg(lower_program(parse_program(text)))
    queries = _interference_queries(bundle)
    cache = VerdictCache()
    checker = RealizabilityChecker(bundle, cache=cache)
    for q in queries:  # warm pass: every later pass is all cache hits
        checker.check(q)

    def rerun():
        return [checker.check(q).verdict for q in queries]

    verdicts = benchmark(rerun)
    assert all(v in ("sat", "unsat", "unknown") for v in verdicts)
    assert cache.hits > 0
