"""Fig. 7a — VFG construction time: Saber vs Fsam vs Canary.

Paper claims: Canary builds the value-flow graph for every subject
within budget while Saber times out on 9 and Fsam on 15 of the 20
subjects; on common subjects Canary is substantially faster at scale.
"""

from __future__ import annotations

import pytest

from repro.baselines import FsamBaseline, SaberBaseline
from repro.bench import render_fig7_time
from repro.vfg import build_vfg

# Representative subjects spanning the size range that all three tools
# complete under the quick profile.
SUBJECT_NAMES = ["lrzip", "coturn", "transmission", "redis"]


@pytest.mark.parametrize("name", SUBJECT_NAMES)
def test_canary_vfg_build(benchmark, prepared, name):
    module, _truth, lines = prepared(name)
    result = benchmark(lambda: build_vfg(module))
    assert result.vfg.num_edges > 0
    benchmark.extra_info["lines"] = lines
    benchmark.extra_info["vfg_edges"] = result.vfg.num_edges


@pytest.mark.parametrize("name", SUBJECT_NAMES)
def test_saber_vfg_build(benchmark, prepared, name):
    module, _truth, lines = prepared(name)
    saber = SaberBaseline()
    _pts, graph, _secs, timed_out = benchmark(lambda: saber.build_vfg(module))
    assert not timed_out
    benchmark.extra_info["lines"] = lines
    benchmark.extra_info["vfg_edges"] = graph.num_edges


@pytest.mark.parametrize("name", SUBJECT_NAMES)
def test_fsam_vfg_build(benchmark, prepared, name):
    module, _truth, lines = prepared(name)
    fsam = FsamBaseline()
    _pts, graph, _secs, timed_out = benchmark(lambda: fsam.build_vfg(module))
    assert not timed_out
    benchmark.extra_info["lines"] = lines
    benchmark.extra_info["vfg_edges"] = graph.num_edges


def test_fig7a_shape_and_render(benchmark, all_runs):
    """The figure's qualitative claims, checked on the full sweep."""
    table = benchmark(lambda: render_fig7_time(all_runs))
    print("\n" + table)
    canary_na = sum(1 for r in all_runs if "canary" not in r.tools)
    saber_na = sum(1 for r in all_runs if r.tools["saber"].timed_out)
    fsam_na = sum(1 for r in all_runs if r.tools["fsam"].timed_out)
    # Canary completes every subject; the baselines do not.
    assert canary_na == 0
    assert saber_na >= 1
    # Fsam exhausts the budget no later than Saber (it is the heavier tool).
    assert fsam_na >= saber_na
    # On the largest subject all three ran, Canary is not the slowest tool.
    common = [
        r
        for r in all_runs
        if not r.tools["saber"].timed_out and not r.tools["fsam"].timed_out
    ]
    biggest = max(common, key=lambda r: r.lines)
    canary_t = biggest.tools["canary"].seconds
    assert canary_t <= max(
        biggest.tools["saber"].seconds, biggest.tools["fsam"].seconds
    ) * 2.0
