"""Benchmarks for the sink-directed path enumeration engine.

Three stress shapes, each targeting one prune:

* **dead fan-out** — wide copy trees whose leaves are never dereferenced:
  only sink-reachability keeps the DFS out of them;
* **guard diamonds** — branch ladders whose arms contradict the source's
  guard arithmetically: the incremental guard prefix cuts the subtree at
  the first contradictory edge instead of solving every completed path;
* **shared slot** — the parallel-engine workload (n writers × k readers),
  here used to pin that the streaming pipeline is wall-clock no slower
  than the enumerate-all-then-batch barrier it replaces.

Every comparison also asserts the exactness guarantee (identical bug
keys with and without pruning).  Results are written to
``BENCH_enumeration.json`` in the repo root; wall-clock numbers are
recorded there rather than hard-asserted (CI machines vary), except for
generous pathology bounds.
"""

from __future__ import annotations

import pathlib
import time

from repro import AnalysisConfig, Canary
from repro.bench import write_bench_results
from repro.smt.solver import (
    IncrementalSolver,
    Solver,
    reset_warm_solvers,
    warm_solver_counters,
)
from repro.smt.terms import and_, bool_var, int_var, lt

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "BENCH_enumeration.json"

_UNPRUNED = dict(
    sink_reachability=False, incremental_guard_pruning=False, dead_state_memo=False
)


def _dead_fanout_program(width: int, depth: int) -> str:
    """One real UAF plus ``width`` copy chains of ``depth`` hops whose
    ends are never dereferenced — pure enumeration waste without the
    reachability index."""
    lines = [
        "void main() {",
        "    int** slot = malloc();",
        "    int* init = malloc();",
        "    *slot = init;",
        "    fork(t, w, slot);",
        "    int* live = *slot;",
        "    print(*live);",
    ]
    for i in range(width):
        lines.append(f"    int* d{i}_0 = *slot;")
        for j in range(depth):
            lines.append(f"    int* d{i}_{j + 1} = d{i}_{j};")
    lines.append("}")
    lines.append("void w(int** s) { int* b = malloc(); *s = b; free(b); }")
    return "\n".join(lines)


def _guard_diamond_program(n_arms: int) -> str:
    """The free happens under ``n >= 3``; every reader arm is guarded by
    ``n < 3`` — all candidates are guard-contradictory, and the prefix
    refutes each arm at its first edge."""
    lines = [
        "extern int n;",
        "void main() {",
        "    int** slot = malloc();",
        "    int* init = malloc();",
        "    *slot = init;",
        "    fork(t, w, slot);",
    ]
    for i in range(n_arms):
        lines.append(f"    if (n < 3) {{ int* v{i} = *slot; print(*v{i}); }}")
    lines.append("}")
    lines.append(
        "void w(int** s) { int* b = malloc();"
        " if (n >= 3) { *s = b; free(b); } }"
    )
    return "\n".join(lines)


def _shared_slot_program(n_workers: int, n_readers: int) -> str:
    lines = [
        "void main() {",
        "    int** slot = malloc();",
        "    int* init = malloc();",
        "    *slot = init;",
    ]
    for i in range(n_workers):
        lines.append(f"    fork(t{i}, worker{i}, slot);")
    for j in range(n_readers):
        lines.append(f"    int* v{j} = *slot;")
        lines.append(f"    print(*v{j});")
    lines.append("}")
    for i in range(n_workers):
        lines.append(
            f"void worker{i}(int** s) {{ int* b{i} = malloc(); *s = b{i}; free(b{i}); }}"
        )
    return "\n".join(lines)


def _run(text: str, **overrides):
    t0 = time.perf_counter()
    report = Canary(AnalysisConfig(**overrides)).analyze_source(text)
    wall = time.perf_counter() - t0
    visits = sum(st.get("visits", 0) for st in report.search_statistics.values())
    pruned = sum(
        st.get("pruned_unreachable", 0) + st.get("pruned_guard", 0)
        for st in report.search_statistics.values()
    )
    return report, wall, visits, pruned


def _keys(report):
    return sorted(b.key for b in report.bugs)


_results: dict = {}


def _record(name: str, **data) -> None:
    _results[name] = data
    write_bench_results(RESULTS, _results, suite="enumeration")


def test_dead_fanout_reachability_prune():
    text = _dead_fanout_program(width=12, depth=8)
    ref, ref_wall, ref_visits, _ = _run(text, **_UNPRUNED)
    opt, opt_wall, opt_visits, opt_pruned = _run(text)
    assert _keys(ref) == _keys(opt)
    assert len(opt.bugs) == 1
    assert opt_visits < ref_visits, (
        f"pruned DFS visited {opt_visits} nodes, reference {ref_visits}"
    )
    assert opt_pruned > 0
    _record(
        "dead_fanout",
        reference_visits=ref_visits,
        pruned_visits=opt_visits,
        visit_reduction=1.0 - opt_visits / ref_visits,
        edges_pruned=opt_pruned,
        reference_wall_s=round(ref_wall, 4),
        pruned_wall_s=round(opt_wall, 4),
    )


def test_guard_diamond_prefix_prune():
    # prune_guards=False disables the *construction-time* semi-decision
    # filter (the paper's §5.2 optimization) in both runs, so the
    # contradictions survive into the VFG and only the enumeration-time
    # prefix can cut them — isolating the incremental prune.
    text = _guard_diamond_program(n_arms=10)
    ref, ref_wall, ref_visits, _ = _run(text, prune_guards=False, **_UNPRUNED)
    opt, opt_wall, opt_visits, _ = _run(text, prune_guards=False)
    assert _keys(ref) == _keys(opt) == []
    assert opt_visits <= ref_visits
    guard_cuts = sum(
        st.get("pruned_guard", 0) for st in opt.search_statistics.values()
    )
    assert guard_cuts > 0, "contradictory arms must be cut by the prefix"
    # The reference run decides every contradictory candidate with the
    # solver; the pruned run never even assembles those formulas.
    assert opt.solver_statistics["queries"] <= ref.solver_statistics["queries"]
    _record(
        "guard_diamond",
        reference_visits=ref_visits,
        pruned_visits=opt_visits,
        guard_cuts=guard_cuts,
        reference_queries=ref.solver_statistics["queries"],
        pruned_queries=opt.solver_statistics["queries"],
        reference_wall_s=round(ref_wall, 4),
        pruned_wall_s=round(opt_wall, 4),
    )


def test_streaming_no_slower_than_batch():
    text = _shared_slot_program(n_workers=10, n_readers=2)
    batch, batch_wall, _, _ = _run(
        text, parallel_solving=True, streaming_solving=False, solver_workers=4
    )
    stream, stream_wall, _, _ = _run(
        text, parallel_solving=True, streaming_solving=True, solver_workers=4
    )
    assert _keys(batch) == _keys(stream)
    # Soft: streaming removes the enumerate-all barrier, so it should not
    # be pathologically slower (pool startup noise allowed).
    assert stream_wall <= max(batch_wall * 3.0, batch_wall + 0.5)
    _record(
        "streaming_vs_batch",
        batch_wall_s=round(batch_wall, 4),
        streaming_wall_s=round(stream_wall, 4),
        keys=len(_keys(stream)),
    )


def test_incremental_smt_sibling_paths():
    """End to end: sibling path queries against one sink family routed
    through the warm per-sink solver must produce identical bug keys and
    demonstrably share work (conjunct reuse, retained theory lemmas)."""
    text = _shared_slot_program(n_workers=12, n_readers=2)
    reset_warm_solvers()
    off, off_wall, _, _ = _run(text, incremental_smt=False)
    assert warm_solver_counters()["warm_families"] == 0  # ablation is real
    reset_warm_solvers()
    on, on_wall, _, _ = _run(text, incremental_smt=True)
    warm = warm_solver_counters()
    reset_warm_solvers()
    assert _keys(off) == _keys(on)  # exactness w.r.t. reported bug keys
    assert warm["queries"] > 0
    assert warm["conjuncts_reused"] > 0, "sibling overlap was not shared"
    _record(
        "incremental_smt",
        keys=len(_keys(on)),
        warm_queries=warm["queries"],
        conjuncts_new=warm["conjuncts_new"],
        conjuncts_reused=warm["conjuncts_reused"],
        theory_lemmas=warm["theory_lemmas"],
        oneshot_wall_s=round(off_wall, 4),
        incremental_wall_s=round(on_wall, 4),
    )


def test_incremental_smt_warm_vs_oneshot_microbench():
    """The solver-layer win in isolation: 24 sibling formulas sharing a
    12-conjunct order prefix, solved one-shot each vs one warm solver."""
    prefix = [lt(int_var(f"t{i}"), int_var(f"t{i + 1}")) for i in range(12)]
    formulas = []
    for k in range(24):
        tail = [lt(int_var(f"t{k % 12}"), int_var(f"u{k}")), bool_var(f"g{k}")]
        formulas.append(and_(*(prefix + tail)))

    t0 = time.perf_counter()
    oneshot = []
    for formula in formulas:
        solver = Solver()
        solver.add(formula)
        oneshot.append(solver.check())
    oneshot_wall = time.perf_counter() - t0

    warm = IncrementalSolver()
    t0 = time.perf_counter()
    warmed = [warm.check_formula(formula)[0] for formula in formulas]
    warm_wall = time.perf_counter() - t0

    assert oneshot == warmed
    stats = warm.statistics
    # Every query after the first reuses the entire shared prefix: the
    # warm solver encodes each distinct conjunct exactly once.
    assert stats["conjuncts_reused"] >= 12 * 23
    assert stats["conjuncts_new"] == 12 + 2 * 24
    _record(
        "incremental_smt_micro",
        queries=len(formulas),
        conjuncts_new=stats["conjuncts_new"],
        conjuncts_reused=stats["conjuncts_reused"],
        oneshot_wall_s=round(oneshot_wall, 4),
        incremental_wall_s=round(warm_wall, 4),
        speedup=round(oneshot_wall / max(warm_wall, 1e-9), 2),
    )


def test_check_wall_clock_no_regression():
    """End to end: the pruned engine must not be slower than the
    reference DFS on a mixed workload (generous bound for CI noise)."""
    text = _dead_fanout_program(width=10, depth=6)
    _ref, ref_wall, _, _ = _run(text, **_UNPRUNED)
    _opt, opt_wall, _, _ = _run(text)
    assert opt_wall <= max(ref_wall * 1.5, ref_wall + 0.25)
    _record(
        "wall_clock",
        reference_wall_s=round(ref_wall, 4),
        pruned_wall_s=round(opt_wall, 4),
    )
