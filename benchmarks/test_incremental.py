"""Benchmarks for the staged pass pipeline's incremental re-analysis.

Three scenarios on a multi-function subject:

* **warm** — re-analyzing identical input must execute *zero* passes
  (in particular no pointer/VFG pass) and report identical bug keys;
* **incremental** — after editing one helper function, fewer than half
  of the pipeline's passes re-execute, and the keys still match a fresh
  cold run on the edited source;
* **disk-warm** — with ``cache_dir``, a fresh driver (simulating a new
  process) re-executes only the frontend passes.

Results are written to ``BENCH_incremental.json`` in the repo root;
wall-clock numbers are recorded rather than hard-asserted (CI machines
vary) — the assertions pin the pass counts and the key equivalence.
"""

from __future__ import annotations

import pathlib
import time

from repro import AnalysisConfig, Canary
from repro.bench import write_bench_results

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "BENCH_incremental.json"

#: pointer/VFG passes — the expensive middle of the pipeline
VFG_PASSES = ("pointer", "tcg", "mhp", "dataflow", "interference")


def _subject(n_spin: int = 8) -> str:
    """An inter-thread UAF between two workers communicating through a
    global, plus ``n_spin`` arithmetic helpers analyzed alongside them.
    The helpers come after the workers so a helper edit leaves every
    worker label (and the thread structure) untouched."""
    parts = [
        "int *g;",
        "",
        "void w_free() {",
        "  free(g);",
        "}",
        "",
        "void w_use() {",
        "  int x;",
        "  x = *g;",
        "  print(x);",
        "}",
    ]
    for i in range(n_spin):
        parts += [
            "",
            f"int spin{i}(int a) {{",
            f"  int b;",
            f"  b = a + {i};",
            f"  return b * 2;",
            f"}}",
        ]
    parts += [
        "",
        "int main() {",
        "  g = malloc(4);",
        "  fork(t1, w_free);",
        "  fork(t2, w_use);",
    ]
    parts += [f"  spin{i}({i});" for i in range(n_spin)]
    parts += ["  return 0;", "}"]
    return "\n".join(parts)


def _keys(report):
    return sorted(b.key for b in report.bugs)


def _vfg_passes_run(report):
    return [
        name
        for name in report.passes_run()
        if name.split(":")[0] in VFG_PASSES
    ]


_results: dict = {}


def _record(name: str, **data) -> None:
    _results[name] = data
    write_bench_results(RESULTS, _results, suite="incremental")


def test_warm_rerun_executes_zero_passes():
    text = _subject()
    canary = Canary(AnalysisConfig())
    t0 = time.perf_counter()
    cold = canary.analyze_source(text, filename="subject.mcc")
    cold_wall = time.perf_counter() - t0
    t1 = time.perf_counter()
    warm = canary.analyze_source(text, filename="subject.mcc")
    warm_wall = time.perf_counter() - t1

    assert _keys(cold), "subject must report the inter-thread UAF"
    assert _keys(warm) == _keys(cold)
    assert warm.passes_run() == []
    assert _vfg_passes_run(warm) == []
    _record(
        "warm",
        cold_seconds=cold_wall,
        warm_seconds=warm_wall,
        speedup=cold_wall / warm_wall if warm_wall else float("inf"),
        cold_passes_run=len(cold.passes_run()),
        warm_passes_run=len(warm.passes_run()),
    )


def test_single_function_edit_reruns_under_half_the_passes():
    text = _subject()
    canary = Canary(AnalysisConfig())
    t0 = time.perf_counter()
    cold = canary.analyze_source(text, filename="subject.mcc")
    cold_wall = time.perf_counter() - t0

    # Edit the helper analyzed last: Alg. 1 journal replay is valid for
    # the unbroken prefix of the bottom-up order (later summaries may
    # observe points-to state written while analyzing earlier functions),
    # so an edit invalidates the edited function and everything after it.
    edited = text.replace("b = a + 7;", "b = a + 77;")
    assert edited != text
    t1 = time.perf_counter()
    incr = canary.analyze_source(edited, filename="subject.mcc")
    incr_wall = time.perf_counter() - t1

    total = len(incr.pass_statistics)
    ran = incr.passes_run()
    fraction = len(ran) / total
    assert fraction < 0.5, f"incremental edit re-ran {ran} ({fraction:.0%})"
    # the edit is thread- and sink-irrelevant: the pointer triple and the
    # detection pass must be reused, and the workers' dataflow replays
    for name in ("pointer", "tcg", "mhp", "dataflow:w_free", "dataflow:w_use"):
        assert name not in ran
    assert not any(name.startswith("detect:") for name in ran)
    assert _keys(incr) == _keys(cold)
    fresh = Canary(AnalysisConfig()).analyze_source(edited, filename="subject.mcc")
    assert _keys(incr) == _keys(fresh)
    _record(
        "incremental",
        total_passes=total,
        passes_rerun=len(ran),
        rerun_fraction=fraction,
        rerun_names=ran,
        incremental_seconds=incr_wall,
        cold_seconds=cold_wall,
    )


def test_disk_cache_warm_process(tmp_path):
    text = _subject()
    cfg = AnalysisConfig(cache_dir=str(tmp_path))
    cold = Canary(cfg).analyze_source(text, filename="subject.mcc")
    t0 = time.perf_counter()
    warm = Canary(cfg).analyze_source(text, filename="subject.mcc")
    warm_wall = time.perf_counter() - t0
    assert _keys(warm) == _keys(cold)
    assert set(warm.passes_run()) == {"parse", "lower"}
    assert _vfg_passes_run(warm) == []
    _record(
        "disk_warm",
        warm_seconds=warm_wall,
        passes_run=sorted(warm.passes_run()),
    )
