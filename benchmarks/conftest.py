"""Shared fixtures for the benchmark suite.

The full three-tool sweep over all twenty subjects is expensive, so it
runs once per session and is shared by every table/figure target.
Select the size profile with ``REPRO_BENCH_PROFILE`` (quick | paper).
"""

from __future__ import annotations

import pytest

from repro.bench import SUBJECTS, active_profile, prepare_subject, run_all


@pytest.fixture(scope="session")
def profile():
    return active_profile()


@pytest.fixture(scope="session")
def all_runs(profile):
    """One full evaluation sweep: every subject, every tool."""
    return run_all(profile)


@pytest.fixture(scope="session")
def subject_by_name():
    return {s.name: s for s in SUBJECTS}


@pytest.fixture(scope="session")
def prepared(profile, subject_by_name):
    """Factory: (module, truth, lines) for a subject, cached."""

    def get(name: str):
        return prepare_subject(subject_by_name[name], profile)

    return get
