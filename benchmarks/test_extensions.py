"""Benchmarks for the implemented future-work extensions (paper §9).

Not paper tables; they quantify what the extensions cost and what they
buy on the generated corpus:

* lock modeling: extra constraints per query vs. false positives removed;
* memory models: report growth under TSO/PSO (relaxation monotonicity);
* witness replay: the cost of dynamically confirming every report.
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Canary
from repro.interp import confirm_all

SUBJECT = "transmission"


def test_lock_modeling_cost(benchmark, prepared):
    module, _truth, _lines = prepared(SUBJECT)
    report = benchmark(
        lambda: Canary(AnalysisConfig(model_locks=True)).analyze_module(module)
    )
    baseline = Canary(AnalysisConfig()).analyze_module(module)
    # The generated corpus has no lock-protected patterns: same verdicts.
    assert report.num_reports == baseline.num_reports


@pytest.mark.parametrize("model", ["sc", "tso", "pso"])
def test_memory_model_cost(benchmark, prepared, model):
    module, _truth, _lines = prepared(SUBJECT)
    report = benchmark(
        lambda: Canary(AnalysisConfig(memory_model=model)).analyze_module(module)
    )
    benchmark.extra_info["reports"] = report.num_reports


def test_memory_model_monotonicity(benchmark, prepared):
    module, _truth, _lines = prepared(SUBJECT)

    def counts():
        return [
            Canary(AnalysisConfig(memory_model=m)).analyze_module(module).num_reports
            for m in ("sc", "tso", "pso")
        ]

    sc, tso, pso = benchmark(counts)
    assert sc <= tso <= pso


def test_witness_replay_cost(benchmark, prepared):
    module, _truth, _lines = prepared(SUBJECT)
    report = Canary(AnalysisConfig()).analyze_module(module)
    assert report.num_reports >= 1

    results = benchmark(lambda: confirm_all(module, report.bugs))
    # Every *real* injected bug must replay; the cfp patterns (runtime-
    # correlated conditions) legitimately may not.
    real = [
        r
        for r in results
        if module.function_of(r.bug.source).startswith("real_")
    ]
    assert real and all(r.confirmed for r in real)
