"""Fig. 8 — Canary end-to-end scalability.

Paper claims: time and memory grow almost linearly with subject size
(linear fits with R² ≈ 0.83 / 0.78); MySQL (~3 MLoC) finishes in ~2.5 h
and firefox (~9 MLoC) in ~4.67 h — i.e. the largest subjects complete.
Here: the full pipeline is timed on the generated subjects and the same
least-squares fit is computed; the largest subjects must complete and
the fit must be strongly linear.
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Canary
from repro.bench import fig8_fits, render_fig8

SWEEP = ["lrzip", "httrack", "transmission", "redis", "zfs", "openssl"]


@pytest.mark.parametrize("name", SWEEP)
def test_canary_end_to_end(benchmark, prepared, name):
    module, _truth, lines = prepared(name)
    # use_cache=False: pytest-benchmark re-invokes the lambda; the driver's
    # cross-run caches would otherwise time cache lookups, not analysis.
    canary = Canary(AnalysisConfig(use_cache=False))
    report = benchmark(lambda: canary.analyze_module(module))
    benchmark.extra_info["lines"] = lines
    benchmark.extra_info["reports"] = report.num_reports


def test_fig8_linear_fit(benchmark, all_runs):
    table = benchmark(lambda: render_fig8(all_runs))
    print("\n" + table)
    time_fit, mem_fit = fig8_fits(all_runs)
    # Near-linear growth (the paper reports R² around 0.8; the synthetic
    # corpus is cleaner, so we require at least that).
    assert time_fit.r_squared >= 0.75
    assert mem_fit.r_squared >= 0.75
    assert time_fit.slope > 0
    assert mem_fit.slope > 0


def test_largest_subjects_complete(benchmark, all_runs):
    """The mysql/firefox claim: the two largest subjects finish."""
    by_size = benchmark(lambda: sorted(all_runs, key=lambda r: r.lines))
    for run in by_size[-2:]:
        canary = run.tools["canary"]
        assert canary.seconds is not None
        assert canary.reports is not None
