"""Microbenchmarks for the SMT substrate (supporting §5.2 claims).

Not a paper table, but the constraint-solving optimizations (semi-
decision filtering, small blocking clauses from negative cycles,
cube-and-conquer) are explicit contributions of §5.2 — these benches
keep their costs visible.
"""

from __future__ import annotations

import pytest

from repro.smt import (
    Solver,
    and_,
    bool_var,
    cube_solve,
    implies,
    int_var,
    lt,
    not_,
    or_,
    quick_unsat,
)


def _order_chain_formula(n: int, satisfiable: bool):
    """O_0 < O_1 < ... < O_n, plus guard-selected disjunctions; optionally
    closed into a cycle (UNSAT)."""
    parts = [lt(int_var(f"O{i}"), int_var(f"O{i+1}")) for i in range(n)]
    for i in range(0, n, 3):
        g = bool_var(f"g{i}")
        parts.append(
            implies(g, or_(lt(int_var(f"O{i}"), int_var("Ox")), lt(int_var("Ox"), int_var(f"O{i+1}"))))
        )
    if not satisfiable:
        parts.append(lt(int_var(f"O{n}"), int_var("O0")))
    return and_(*parts)


@pytest.mark.parametrize("n", [10, 40, 80])
def test_sat_order_chain(benchmark, n):
    formula = _order_chain_formula(n, satisfiable=True)

    def solve():
        s = Solver()
        s.add(formula)
        return s.check()

    assert benchmark(solve) == "sat"


@pytest.mark.parametrize("n", [10, 40, 80])
def test_unsat_order_cycle(benchmark, n):
    formula = _order_chain_formula(n, satisfiable=False)

    def solve():
        s = Solver()
        s.add(formula)
        return s.check()

    assert benchmark(solve) == "unsat"


def test_quick_unsat_filter(benchmark):
    """The semi-decision filter must be orders of magnitude cheaper than
    the full solver on conjunction-only guards."""
    theta = bool_var("theta")
    parts = [theta, not_(theta)] + [
        lt(int_var(f"a{i}"), int_var(f"a{i+1}")) for i in range(50)
    ]
    formula = and_(*parts)
    assert benchmark(lambda: quick_unsat(formula)) is True


def test_cube_and_conquer(benchmark):
    g1, g2 = bool_var("g1"), bool_var("g2")
    x, y, z = int_var("x"), int_var("y"), int_var("z")
    formula = and_(
        or_(g1, g2),
        implies(g1, and_(lt(x, y), lt(y, z), lt(z, x))),
        implies(g2, and_(lt(x, y), lt(y, z))),
    )
    assert benchmark(lambda: cube_solve(formula, max_workers=2)) == "sat"
