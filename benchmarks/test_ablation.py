"""Ablation benchmarks for the design choices DESIGN.md calls out.

* guard pruning (the §5.2 semi-decision filter) — an optimization: same
  verdicts, less work during construction;
* MHP pruning (§6) — fewer store/load pairs to consider;
* order constraints (Φ_ls/Φ_po, §4.2.2/§5.1) — the precision source:
  disabling them must *increase* the report count (order-infeasible
  baits start being reported).
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Canary

SUBJECT = "transmission"


def _reports(module, **kwargs):
    return Canary(AnalysisConfig(**kwargs)).analyze_module(module)


def test_baseline_config(benchmark, prepared):
    module, _truth, _lines = prepared(SUBJECT)
    report = benchmark(lambda: _reports(module))
    assert report.num_reports >= 1


def test_no_guard_pruning(benchmark, prepared):
    module, _truth, _lines = prepared(SUBJECT)
    report = benchmark(lambda: _reports(module, prune_guards=False))
    # Pruning is an optimization: the verdict set must be identical.
    precise = _reports(module)
    assert report.num_reports == precise.num_reports


def test_no_mhp(benchmark, prepared):
    module, _truth, _lines = prepared(SUBJECT)
    report = benchmark(lambda: _reports(module, use_mhp=False))
    precise = _reports(module)
    # MHP is also a pruning device; with the order constraints still on,
    # the solver rejects what MHP would have pruned.
    assert report.num_reports >= precise.num_reports


def test_no_order_constraints(benchmark, prepared):
    module, truth, _lines = prepared(SUBJECT)
    report = benchmark(
        lambda: _reports(module, order_constraints=False, use_mhp=False)
    )
    precise = _reports(module)
    # Without Φ_ls/Φ_po the order-infeasible baits are reported: strictly
    # more findings, i.e. the constraints carry real precision.
    assert report.num_reports > precise.num_reports


def test_no_path_sensitivity_proxy(benchmark, prepared):
    """Crude path-insensitivity proxy: solver budget 0 => all candidates
    (UNKNOWN) are dropped, showing the solver's role in admitting TPs."""
    module, _truth, _lines = prepared(SUBJECT)
    report = benchmark(lambda: _reports(module, solver_max_conflicts=None))
    assert report.num_reports >= 1
